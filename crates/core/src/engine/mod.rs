//! The runtime-agnostic protocol engine.
//!
//! Before this module existed the workspace maintained three
//! hand-mirrored copies of the DLPT driver loop — the synchronous pump
//! in [`crate::system::DlptSystem`], the discrete-event `LatencyNet`
//! and the threaded `ThreadedDlpt` in `dlpt-net` — and every
//! cross-cutting subsystem (replication flush, cache invalidation)
//! had to be re-implemented three times. [`Engine`] collapses them:
//! it owns the per-peer shards, the delivery [`Directory`], the
//! per-peer [`RouteCache`]s and the replication bookkeeping, and
//! processes every envelope through **one** state machine
//! ([`Engine::deliver`]). What distinguishes the runtimes is only *how
//! messages travel*, which the [`Transport`] trait abstracts:
//!
//! | Runtime | Transport | Delivery |
//! |---|---|---|
//! | [`crate::system::DlptSystem`] | [`FifoTransport`] | immediate FIFO |
//! | `dlpt-net::sim::LatencyNet` | latency event queue | sampled delay |
//! | `dlpt-net::threaded::ThreadedDlpt` | framed channels | encoded frames to peer threads |
//! | [`parallel::ParallelPump`] | per-slice SPSC rings | credit-based quiescence |
//!
//! A transport only queues envelopes; it never interprets them. The
//! engine in turn never schedules — it reports `Requeue` when a
//! destination is still in flight and lets the runtime decide whether
//! to retry now (FIFO), one tick later (latency queue) or after the
//! next peer reply (framed channels).
//!
//! Behavioural knobs that used to be implicit in which runtime you
//! picked are explicit [`EngineConfig`] flags: the Section-4 capacity
//! model (`charge_capacity`), eager replica maintenance
//! (`eager_replication`) and whether request aggregation may finalize
//! mid-drain or only at quiescence (`judge_at_quiescence`, required
//! when responses can arrive out of order).

pub mod parallel;
#[cfg(test)]
mod slab_props;

use crate::cache::{self, CacheStats, RouteCache, Shortcut};
use crate::directory::{Directory, FxHashMap, FxHashSet};
use crate::error::{DlptError, Result};
use crate::key::Key;
use crate::mapping::MappingViolation;
use crate::messages::{
    Address, DiscoveryMsg, DiscoveryOutcome, Envelope, JoinPhase, Message, NodeMsg, NodeSeed,
    PeerMsg, QueryKind,
};
use crate::metrics::SystemStats;
use crate::node::NodeState;
use crate::obs::health::{
    imbalance_of, AuditCheck, HealthMonitor, MemoryFootprint, PeerHealth, Violation,
};
use crate::obs::{EventKind, MetricsRegistry, TraceEvent, TraceRing, Tracer};
use crate::peer::PeerShard;
use crate::protocol::{self, discovery, maintenance, repair, Effects};
use crate::replication::{AntiEntropyReport, ReplicationStats};
use crate::trie::{PgcpTrie, TrieViolation};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// How envelopes travel between the engine and the peers.
///
/// Implementations queue envelopes for later processing — immediate
/// FIFO, a latency-sampling event queue, encoded frames over crossbeam
/// channels, or per-slice SPSC rings drained under credit-based
/// quiescence. A transport never interprets an envelope: all protocol
/// behaviour stays in the engine, which is what keeps the three
/// runtimes equivalent.
pub trait Transport {
    /// Queues one envelope for delivery.
    fn deliver(&mut self, env: Envelope);

    /// Queues an envelope for every element of `envs` — fan-out events
    /// (cache invalidation, anti-entropy kicks). The default delivers
    /// in iteration order; transports with a cheaper broadcast path
    /// may override.
    fn broadcast<I>(&mut self, envs: I)
    where
        I: IntoIterator<Item = Envelope>,
        Self: Sized,
    {
        for env in envs {
            self.deliver(env);
        }
    }

    /// The transport's logical clock (0 for untimed FIFO transports).
    fn now(&self) -> u64 {
        0
    }

    /// Whether queuing through this transport is immediate FIFO work
    /// the engine may equivalently run inline ("hop chaining", see
    /// [`Engine::deliver`]). Only the synchronous [`FifoTransport`]
    /// says yes: modelled-latency, fault-injecting, threaded and
    /// batched transports must observe every individual hop.
    fn synchronous(&self) -> bool {
        false
    }
}

/// A mutable reference to a transport is itself a transport — this is
/// what lets decorators like
/// [`FaultyTransport`](crate::transport::FaultyTransport) wrap a
/// runtime-owned transport without taking ownership.
impl<T: Transport> Transport for &mut T {
    fn deliver(&mut self, env: Envelope) {
        (**self).deliver(env);
    }

    fn now(&self) -> u64 {
        (**self).now()
    }

    fn synchronous(&self) -> bool {
        (**self).synchronous()
    }
}

/// The immediate-FIFO transport of the synchronous pump: envelopes are
/// appended to one queue and processed strictly in order. The `u32` is
/// the per-envelope requeue count, owned by the pump's retry policy.
#[derive(Debug, Default)]
pub struct FifoTransport {
    /// The pending envelopes, front = next to deliver.
    pub queue: VecDeque<(u32, Envelope)>,
}

impl Transport for FifoTransport {
    fn deliver(&mut self, env: Envelope) {
        self.queue.push_back((0, env));
    }

    fn synchronous(&self) -> bool {
        true
    }
}

/// Behavioural configuration of an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Replication factor `k`: each tree node lives on its primary
    /// (mapping-rule) host plus `k - 1` ring-successor followers
    /// (`protocol::repair`). `1` disables replication entirely.
    pub replication: usize,
    /// Per-peer routing-shortcut cache capacity ([`crate::cache`]);
    /// `0` disables caching entirely.
    pub cache_capacity: usize,
    /// Model Section 4's per-unit peer capacity: every discovery visit
    /// charges the hosting peer and exhausted peers ignore visits.
    /// The asynchronous runtimes leave this off — capacity is an
    /// experiment-harness concern there.
    pub charge_capacity: bool,
    /// Judge request completion only once the network is quiescent.
    /// Required when responses arrive out of order (latency queue,
    /// threads): the outstanding-branch counter can transiently touch
    /// zero while a parent's response is still in flight. The
    /// synchronous pump finalizes eagerly instead (FIFO order makes
    /// the transient impossible).
    pub judge_at_quiescence: bool,
    /// Maintain replicas eagerly after every mutation
    /// ([`Engine::flush_replication`]); the asynchronous runtimes rely
    /// on periodic anti-entropy alone and keep this off, so the
    /// touched-label bookkeeping stays empty there.
    pub eager_replication: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            replication: 1,
            cache_capacity: 0,
            charge_capacity: false,
            judge_at_quiescence: false,
            eager_replication: false,
        }
    }
}

/// Result of a completed discovery request, as seen by the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupOutcome {
    /// The paper's satisfaction criterion: the request reached its
    /// final destination (and, for exact queries, the key was
    /// registered there), with no visit ignored for lack of capacity.
    pub satisfied: bool,
    /// Exact queries: whether the key was found. Range/completion:
    /// whether the region was reached.
    pub found: bool,
    /// True iff any visit was ignored by an exhausted peer.
    pub dropped: bool,
    /// Matching keys, sorted.
    pub results: Vec<Key>,
    /// Node labels along the up/down route (entry first).
    pub path: Vec<Key>,
    /// Hosting peer of each `path` entry at completion time.
    pub host_path: Vec<Key>,
    /// Extra node visits performed by the scatter phase of
    /// range/completion queries.
    pub gather_visits: usize,
}

impl LookupOutcome {
    /// Tree edges traversed on the up/down route.
    pub fn logical_hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }

    /// Physical messages on the up/down route: consecutive visits
    /// hosted by different peers (the quantity of Figure 9).
    pub fn physical_hops(&self) -> usize {
        self.host_path.windows(2).filter(|w| w[0] != w[1]).count()
    }
}

/// An empty, unsatisfied outcome (used by facades when a request could
/// not even start, e.g. on an empty tree).
pub fn empty_outcome() -> LookupOutcome {
    LookupOutcome {
        satisfied: false,
        found: false,
        dropped: false,
        results: Vec::new(),
        path: Vec::new(),
        host_path: Vec::new(),
        gather_visits: 0,
    }
}

/// Aggregation state of one in-flight request. Lives in a pooled slot
/// of [`GatherPool`]; its buffers (filter table, free-list slot) are
/// reused across requests so steady-state aggregation allocates
/// nothing.
#[derive(Debug)]
struct GatherAgg {
    outstanding: i64,
    satisfied: bool,
    dropped: bool,
    results: Vec<Key>,
    best_path: Vec<Key>,
    responses: usize,
    /// Digests of the satisfied responses already applied — the
    /// idempotency filter that keeps a duplicated envelope from
    /// double-decrementing `outstanding` below the true branch count.
    /// (Unsatisfied/dropped responses are exempt: on a reliable
    /// transport distinct exhausted branches can synthesize identical
    /// reports, and a dropped report can never finalize a request as
    /// satisfied, so double-counting one is verdict-safe.) Consulted
    /// only while fault recovery is on — reliable transports cannot
    /// duplicate, so fault-off runs skip the per-response digest.
    seen: FxHashSet<u64>,
    /// Snapshot of the original entry envelope, kept only while fault
    /// recovery is on so a lost branch can be re-issued verbatim.
    /// Fault-off runs never take the snapshot.
    retry: Option<Envelope>,
    /// Fault-induced retries this request has been re-armed for.
    /// Survives `rearm` (a retry must keep its own count) and resets
    /// only when the slot is reused for a fresh request.
    attempts: u32,
}

impl GatherAgg {
    fn fresh() -> Self {
        GatherAgg {
            outstanding: 1,
            satisfied: true,
            dropped: false,
            results: Vec::new(),
            best_path: Vec::new(),
            responses: 0,
            seen: FxHashSet::default(),
            retry: None,
            attempts: 0,
        }
    }

    /// Resets the aggregation to its begin-request state, keeping the
    /// retry snapshot (a retried request re-arms with the same origin)
    /// and the filter table's capacity.
    fn rearm(&mut self) {
        self.outstanding = 1;
        self.satisfied = true;
        self.dropped = false;
        self.results.clear();
        self.best_path.clear();
        self.responses = 0;
        self.seen.clear();
    }
}

/// A finished aggregation's verdict inputs, moved out of the pool slot
/// at release time.
struct FinishedAgg {
    outstanding: i64,
    satisfied: bool,
    dropped: bool,
    responses: usize,
    attempts: u32,
    results: Vec<Key>,
    best_path: Vec<Key>,
}

/// Pooled aggregation slots keyed by request id: request begin/finish
/// stops allocating and tree-walking per response (the old
/// `BTreeMap<u64, GatherAgg>` paid a node allocation per request and
/// an O(log n) walk per response).
#[derive(Debug, Default)]
struct GatherPool {
    /// request id → slot index.
    index: FxHashMap<u64, u32>,
    slots: Vec<GatherAgg>,
    /// Released slot indices awaiting reuse.
    free: Vec<u32>,
}

impl GatherPool {
    /// Registers a fresh aggregation for `id`, reusing a released slot
    /// when one is available.
    fn begin(&mut self, id: u64) -> &mut GatherAgg {
        let i = match self.free.pop() {
            Some(i) => {
                let agg = &mut self.slots[i as usize];
                agg.rearm();
                agg.retry = None;
                agg.attempts = 0;
                i
            }
            None => {
                self.slots.push(GatherAgg::fresh());
                (self.slots.len() - 1) as u32
            }
        };
        self.index.insert(id, i);
        &mut self.slots[i as usize]
    }

    fn get(&self, id: u64) -> Option<&GatherAgg> {
        self.index.get(&id).map(|&i| &self.slots[i as usize])
    }

    fn get_mut(&mut self, id: u64) -> Option<&mut GatherAgg> {
        let &i = self.index.get(&id)?;
        Some(&mut self.slots[i as usize])
    }

    fn contains(&self, id: u64) -> bool {
        self.index.contains_key(&id)
    }

    #[cfg(test)]
    fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Removes `id`'s aggregation, moving out the accumulated vectors
    /// and returning the slot to the free list (filter capacity and
    /// the slot itself are retained for reuse).
    fn release(&mut self, id: u64) -> Option<FinishedAgg> {
        let i = self.index.remove(&id)?;
        let agg = &mut self.slots[i as usize];
        let fin = FinishedAgg {
            outstanding: agg.outstanding,
            satisfied: agg.satisfied,
            dropped: agg.dropped,
            responses: agg.responses,
            attempts: agg.attempts,
            results: std::mem::take(&mut agg.results),
            best_path: std::mem::take(&mut agg.best_path),
        };
        agg.retry = None;
        self.free.push(i);
        Some(fin)
    }
}

/// Sentinel slot index meaning "peer id has no slot".
const SLOT_NONE: u32 = u32::MAX;

/// Engine-side per-peer state, slab-indexed by the peer's interned id.
#[derive(Debug)]
struct PeerSlot {
    /// The peer's identifier (renders ids back to keys at boundaries).
    key: Key,
    /// The locally hosted shard; `None` for remote members (the
    /// threaded runtime's shards live on peer threads).
    shard: Option<PeerShard>,
    /// The peer's entry-point routing-shortcut cache.
    cache: RouteCache,
}

/// Slab of per-peer slots over [`Directory`]-interned peer ids: a flat
/// `id → slot` index plus a free list, replacing the two
/// `BTreeMap<Key, …>` lookups (shard + cache) the delivery path paid
/// per hop. Slots survive `rename_shard` (the slot is re-bound to the
/// new id, so the cache and free-list integrity carry over) and are
/// recycled on dissolution.
#[derive(Debug, Default)]
struct PeerSlab {
    /// peer id → slot index ([`SLOT_NONE`] when not a member).
    by_id: Vec<u32>,
    slots: Vec<Option<PeerSlot>>,
    /// Released slot indices awaiting reuse.
    free: Vec<u32>,
}

impl PeerSlab {
    #[inline]
    fn slot_of(&self, pid: u32) -> Option<u32> {
        match self.by_id.get(pid as usize) {
            Some(&s) if s != SLOT_NONE => Some(s),
            _ => None,
        }
    }

    #[inline]
    fn contains(&self, pid: u32) -> bool {
        self.slot_of(pid).is_some()
    }

    #[inline]
    fn get(&self, pid: u32) -> Option<&PeerSlot> {
        let s = self.slot_of(pid)?;
        self.slots[s as usize].as_ref()
    }

    #[inline]
    fn get_mut(&mut self, pid: u32) -> Option<&mut PeerSlot> {
        let s = self.slot_of(pid)?;
        self.slots[s as usize].as_mut()
    }

    fn insert(&mut self, pid: u32, slot: PeerSlot) {
        if let Some(s) = self.slot_of(pid) {
            self.slots[s as usize] = Some(slot);
            return;
        }
        if self.by_id.len() <= pid as usize {
            self.by_id.resize(pid as usize + 1, SLOT_NONE);
        }
        let s = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(slot);
                s
            }
            None => {
                self.slots.push(Some(slot));
                (self.slots.len() - 1) as u32
            }
        };
        self.by_id[pid as usize] = s;
    }

    fn remove(&mut self, pid: u32) -> Option<PeerSlot> {
        let s = self.slot_of(pid)?;
        self.by_id[pid as usize] = SLOT_NONE;
        self.free.push(s);
        self.slots[s as usize].take()
    }

    /// Re-binds the slot of `old_pid` to `new_pid` (peer rename): the
    /// slot — shard, cache, free-list position — stays put; only the
    /// id-level index moves. Returns false when `old_pid` has no slot.
    fn rebind(&mut self, old_pid: u32, new_pid: u32) -> bool {
        let Some(s) = self.slot_of(old_pid) else {
            return false;
        };
        self.by_id[old_pid as usize] = SLOT_NONE;
        if self.by_id.len() <= new_pid as usize {
            self.by_id.resize(new_pid as usize + 1, SLOT_NONE);
        }
        self.by_id[new_pid as usize] = s;
        true
    }

    /// All live slots, in slab (slot-index) order — only for
    /// order-insensitive traversals; ring-order traversals go through
    /// the membership set.
    fn iter_slots_mut(&mut self) -> impl Iterator<Item = &mut PeerSlot> {
        self.slots.iter_mut().flatten()
    }
}

/// Content digest of a satisfied response: two reports are the same
/// delivery iff their path, results and branch fan-out agree (within
/// one request a satisfied report's path is unique to its reporting
/// node, so distinct deliveries never collide).
fn response_digest(outcome: &DiscoveryOutcome) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = crate::directory::FxHasher::default();
    outcome.path.hash(&mut h);
    outcome.results.hash(&mut h);
    outcome.pending_children.hash(&mut h);
    h.finish()
}

/// What [`Engine::deliver`] did with one envelope.
#[derive(Debug)]
pub enum Step {
    /// The envelope was processed (or consumed by aggregation).
    Done,
    /// The destination is not resolvable yet (peer unknown, node still
    /// in flight between shards): the runtime should retry later under
    /// its own policy, or abandon via [`Engine::fail_undeliverable`].
    Requeue(Envelope),
}

/// Internal result of one dispatch step: either a terminal [`Step`] or
/// the next hop of an exact-query chain, delivered inline by the
/// [`Engine::deliver`] loop instead of round-tripping the transport.
enum ChainStep {
    Step(Step),
    Chain(Envelope),
}

/// The unified DLPT runtime state machine. See the module docs.
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    /// Per-peer state (shard + entry-point cache), slab-indexed by the
    /// peer's interned id. The synchronous and discrete-event runtimes
    /// keep every shard here; the threaded runtime's shards live on
    /// peer threads and the slots carry `shard: None` (the engine then
    /// serves as the router: directory, caches, aggregation,
    /// membership).
    peers: PeerSlab,
    /// Every live peer, in ring (identifier) order — the broadcast
    /// domain and the canonical iteration order for anything that
    /// emits messages or reports errors (the slab's slot order is a
    /// reuse artifact and must never leak into the fingerprint).
    members: BTreeSet<Key>,
    /// Node label → hosting peer (interned, incrementally ordered).
    pub(crate) directory: Directory,
    /// In-flight request aggregation, pooled by request id.
    gathers: GatherPool,
    finished: FxHashMap<u64, LookupOutcome>,
    /// Request id → `(target, entry host id)` to teach after a
    /// satisfied exact query.
    learn: FxHashMap<u64, (Key, u32)>,
    next_request: u64,
    pub(crate) root: Option<Key>,
    /// Reused effect buffers: one dispatch allocates nothing once the
    /// vectors have grown to the workload's high-water mark.
    scratch: Effects,
    /// Whether the transport can lose/duplicate envelopes: gates the
    /// per-response idempotency digest and the per-request retry
    /// snapshot, so reliable (fault-off) runs pay for neither.
    fault_recovery: bool,
    /// Label ids whose state changed since the last flush and whose
    /// replicas must be refreshed (eager replication only).
    pub(crate) touched: Vec<u32>,
    /// `(label id, follower peer id)` pairs whose copies must be
    /// garbage-collected because the node dissolved (eager replication
    /// only).
    dropped_replicas: Vec<(u32, u32)>,
    /// Runtime counters.
    pub stats: SystemStats,
    /// Replication counters (all zero at `k = 1`; kept out of
    /// [`SystemStats`] so the unreplicated golden fingerprint is
    /// byte-identical).
    pub repl_stats: ReplicationStats,
    /// Caching counters (all zero at capacity 0; kept out of
    /// [`SystemStats`] for the same golden-fingerprint reason).
    pub cache_stats: CacheStats,
    /// Duplicated client responses suppressed by the per-request
    /// idempotency filter. On a reliable transport this stays zero —
    /// and, like the replication and cache counters, it stays out of
    /// [`SystemStats`] so the fault-free golden fingerprint is
    /// byte-identical.
    pub duplicates_suppressed: u64,
    /// Structured-event tracing hook ([`Tracer::Noop`] by default).
    /// Every emission site gates on [`Tracer::enabled`], so the off
    /// path costs one branch, allocates nothing, and leaves the golden
    /// fingerprint byte-identical (events live outside
    /// [`SystemStats`]).
    pub tracer: Tracer,
    /// Always-on per-request shape histograms (hops, ticks, fan-out,
    /// retries). Preallocated here so recording never allocates; kept
    /// out of [`SystemStats`] for the same golden-fingerprint reason.
    pub metrics: MetricsRegistry,
    /// Post-batch observability record from the parallel pump: slice
    /// ownership and ring depth of the most recent batch, read by
    /// [`Engine::collect_health`]. Empty (and cost-free) on engines
    /// that never ran a parallel batch.
    pub(crate) pump_health: PumpHealth,
}

/// What the parallel pump ([`parallel::ParallelPump`]) left behind
/// after its most recent batch: which worker slice owned each peer and
/// the deepest inter-worker SPSC ring occupancy observed. Kept on the
/// engine (not the pump, which is stateless) so health snapshots can
/// report slice balance; overwritten per batch, never consulted on the
/// routing hot path.
#[derive(Debug, Clone, Default)]
pub struct PumpHealth {
    /// Interned peer id → owning worker slice index **plus one**
    /// (0 = the peer was not part of the last parallel batch).
    pub(crate) slice_of: Vec<u16>,
    /// Worker-slice count of the last parallel batch (0 = none ran).
    pub(crate) slices: u16,
    /// Peak occupancy over every inter-worker SPSC ring of the last
    /// parallel batch — how close the bounded mesh came to exerting
    /// backpressure.
    pub(crate) ring_peak: u32,
}

impl Engine {
    /// An empty engine.
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            config,
            peers: PeerSlab::default(),
            members: BTreeSet::new(),
            directory: Directory::new(),
            gathers: GatherPool::default(),
            finished: FxHashMap::default(),
            learn: FxHashMap::default(),
            next_request: 1,
            root: None,
            scratch: Effects::default(),
            fault_recovery: false,
            touched: Vec::new(),
            dropped_replicas: Vec::new(),
            stats: SystemStats::default(),
            repl_stats: ReplicationStats::default(),
            cache_stats: CacheStats::default(),
            duplicates_suppressed: 0,
            tracer: Tracer::Noop,
            metrics: MetricsRegistry::default(),
            pump_health: PumpHealth::default(),
        }
    }

    /// Switches structured-event tracing on with a ring buffer of
    /// `capacity` events (0 switches it off). The ring is fully
    /// preallocated here; emission never allocates afterwards.
    pub fn set_tracing(&mut self, capacity: usize) {
        self.tracer = if capacity == 0 {
            Tracer::Noop
        } else {
            Tracer::Ring(TraceRing::with_capacity(capacity))
        };
    }

    /// True when the tracer records events.
    pub fn tracing_enabled(&self) -> bool {
        self.tracer.enabled()
    }

    /// Drains the buffered trace events in deterministic merge order.
    /// Empty when tracing is off.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.tracer.drain()
    }

    /// The engine configuration.
    pub fn engine_config(&self) -> &EngineConfig {
        &self.config
    }

    /// Reconfigures the replication factor `k` (clamped to ≥ 1).
    pub fn set_replication(&mut self, k: usize) {
        self.config.replication = k.max(1);
    }

    /// Switches between eager and quiescence-time request finalization
    /// (see [`EngineConfig::judge_at_quiescence`]). The synchronous
    /// pump flips this on while a reordering fault plan is active:
    /// deferred responses break the FIFO parent-before-child ordering
    /// its eager judging relies on.
    pub fn set_judge_at_quiescence(&mut self, on: bool) {
        self.config.judge_at_quiescence = on;
    }

    /// Tells the engine whether the transport can lose or duplicate
    /// envelopes. On, each request keeps a retry snapshot of its entry
    /// envelope ([`Engine::retry_envelope`]) and aggregation runs the
    /// per-response idempotency digest; off (the default), reliable
    /// runs pay for neither. Runtimes flip this alongside their fault
    /// plan and partitions.
    pub fn set_fault_recovery(&mut self, on: bool) {
        self.fault_recovery = on;
    }

    /// Reconfigures the per-peer routing-shortcut cache capacity for
    /// existing peers and every peer joining later (0 = off).
    pub fn set_cache_capacity(&mut self, n: usize) {
        self.config.cache_capacity = n;
        for slot in self.peers.iter_slots_mut() {
            slot.cache.set_capacity(n);
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Number of peers in the ring.
    pub fn peer_count(&self) -> usize {
        self.members.len()
    }

    /// Number of logical tree nodes.
    pub fn node_count(&self) -> usize {
        self.directory.len()
    }

    /// Peer identifiers in ring order.
    pub fn peer_ids(&self) -> Vec<Key> {
        self.members.iter().cloned().collect()
    }

    /// True iff `id` is a live peer.
    pub fn contains_peer(&self, id: &Key) -> bool {
        self.members.contains(id)
    }

    /// All node labels, ascending.
    pub fn node_labels(&self) -> Vec<Key> {
        self.directory.labels().cloned().collect()
    }

    /// Borrow a peer shard (locally hosted runtimes only).
    pub fn shard(&self, id: &Key) -> Option<&PeerShard> {
        let pid = self.directory.id_of(id)?;
        self.peers.get(pid)?.shard.as_ref()
    }

    /// Mutably borrow a peer shard (locally hosted runtimes only).
    pub(crate) fn shard_mut(&mut self, id: &Key) -> Option<&mut PeerShard> {
        let pid = self.directory.id_of(id)?;
        self.peers.get_mut(pid)?.shard.as_mut()
    }

    /// Mutably borrow a peer's entry-point route cache.
    #[cfg(test)]
    fn cache_mut(&mut self, id: &Key) -> Option<&mut RouteCache> {
        let pid = self.directory.id_of(id)?;
        Some(&mut self.peers.get_mut(pid)?.cache)
    }

    /// The locally hosted shards with their peer ids, in ring order.
    pub fn shards(&self) -> impl Iterator<Item = (&Key, &PeerShard)> + '_ {
        self.members
            .iter()
            .filter_map(move |id| self.shard(id).map(|s| (id, s)))
    }

    /// The locally hosted shards in ring order.
    pub(crate) fn local_shards(&self) -> impl Iterator<Item = &PeerShard> + '_ {
        self.members.iter().filter_map(move |id| self.shard(id))
    }

    /// Number of locally hosted shards.
    pub(crate) fn local_shard_count(&self) -> usize {
        self.local_shards().count()
    }

    /// Detaches every locally hosted shard in ring order, keyed by the
    /// peer's interned id, leaving the slots in place. The parallel
    /// pump partitions the result into per-worker slices that *own*
    /// their shards for the batch and hands each one back through
    /// [`Engine::attach_shard`]. Id-keyed (not key-keyed) so slice
    /// routing is an array index, never a map walk.
    pub(crate) fn detach_shards(&mut self) -> Vec<(u32, PeerShard)> {
        let mut out = Vec::with_capacity(self.members.len());
        let ids: Vec<u32> = self
            .members
            .iter()
            .filter_map(|id| self.directory.id_of(id))
            .collect();
        for pid in ids {
            if let Some(slot) = self.peers.get_mut(pid) {
                if let Some(shard) = slot.shard.take() {
                    out.push((pid, shard));
                }
            }
        }
        out
    }

    /// Re-attaches one shard detached by [`Engine::detach_shards`].
    /// The slot normally still exists (the directory is frozen while a
    /// batch owns the shards); a vanished slot is re-created from the
    /// interner so a failed batch can never strand a shard.
    pub(crate) fn attach_shard(&mut self, pid: u32, shard: PeerShard) {
        match self.peers.get_mut(pid) {
            Some(slot) => slot.shard = Some(shard),
            None => {
                let id = self.directory.key_of(pid).clone();
                self.insert_peer(id, Some(shard));
            }
        }
    }

    /// The delivery directory.
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// Mutable access to the delivery directory (runtimes that resolve
    /// deliveries outside [`Engine::deliver`], e.g. the framed router,
    /// bump epochs and heal entries through this).
    pub fn directory_mut(&mut self) -> &mut Directory {
        &mut self.directory
    }

    /// The peer hosting node `label`, per the delivery directory.
    pub fn host_of(&self, label: &Key) -> Option<&Key> {
        self.directory.host_of(label)
    }

    /// The peer the mapping rule designates for `label`:
    /// `min {P : P >= label}`, wrapping to the minimum.
    pub fn host_peer(&self, label: &Key) -> Option<&Key> {
        self.members
            .range::<Key, _>(label..)
            .next()
            .or_else(|| self.members.iter().next())
    }

    /// Ring predecessor of `id` over the current peer set (wrapping).
    fn ring_pred(&self, id: &Key) -> Option<&Key> {
        self.members
            .range::<Key, _>(..id)
            .next_back()
            .or_else(|| self.members.iter().next_back())
    }

    /// Ring successor of `id` over the current peer set (wrapping).
    fn ring_succ(&self, id: &Key) -> Option<&Key> {
        use std::ops::Bound;
        self.members
            .range::<Key, _>((Bound::Excluded(id), Bound::Unbounded))
            .next()
            .or_else(|| self.members.iter().next())
    }

    /// Borrow a node's state wherever it is hosted (local shards).
    pub fn node(&self, label: &Key) -> Option<&NodeState> {
        let lid = self.directory.id_of(label)?;
        let hid = self.directory.host_id(lid)?;
        self.peers.get(hid)?.shard.as_ref()?.nodes.get(label)
    }

    /// Label of the current tree root.
    pub fn root(&self) -> Option<&Key> {
        self.root.as_ref()
    }

    /// Depth of every live node (root = 0), via memoized father-link
    /// walks — O(nodes) for the whole map. Feeds the per-depth visit
    /// histogram ([`crate::metrics::DepthHistogram`]).
    pub fn depth_map(&self) -> BTreeMap<Key, u32> {
        let mut depths: BTreeMap<Key, u32> = BTreeMap::new();
        for shard in self.local_shards() {
            for node in shard.nodes.values() {
                self.depth_into(&node.label, &mut depths);
            }
        }
        depths
    }

    fn depth_into(&self, label: &Key, depths: &mut BTreeMap<Key, u32>) -> u32 {
        if let Some(&d) = depths.get(label) {
            return d;
        }
        let d = match self.node(label).and_then(|n| n.father.as_ref()) {
            None => 0,
            Some(f) => self.depth_into(f, depths) + 1,
        };
        depths.insert(label.clone(), d);
        d
    }

    /// Every registered service key, ascending (local shards).
    pub fn registered_keys(&self) -> Vec<Key> {
        let mut out = Vec::new();
        for shard in self.local_shards() {
            for node in shard.nodes.values() {
                out.extend(node.data.iter().cloned());
            }
        }
        out.sort();
        out
    }

    /// A uniformly random node label (the "random node of the tree"
    /// every request and registration enters through). O(1) over the
    /// directory's sorted table.
    pub fn random_node(&self, rng: &mut StdRng) -> Option<Key> {
        if self.directory.is_empty() {
            return None;
        }
        let i = rng.gen_range(0..self.directory.len());
        Some(self.directory.label_at(i).clone())
    }

    // ------------------------------------------------------------------
    // Membership
    // ------------------------------------------------------------------

    /// Registers a peer whose shard the engine hosts locally. The
    /// runtime then routes the join itself ([`Engine::join_envelope`]).
    pub fn add_local_shard(&mut self, id: Key, capacity: u32) {
        let shard = PeerShard::new(id.clone(), capacity);
        self.insert_peer(id, Some(shard));
    }

    /// Registers a peer whose shard lives elsewhere (peer threads).
    pub fn add_member(&mut self, id: Key) {
        self.insert_peer(id, None);
    }

    fn insert_peer(&mut self, id: Key, shard: Option<PeerShard>) {
        let pid = self.directory.intern(&id);
        self.peers.insert(
            pid,
            PeerSlot {
                key: id.clone(),
                shard,
                cache: RouteCache::new(self.config.cache_capacity),
            },
        );
        self.members.insert(id);
    }

    /// Forgets a peer: membership, its entry-point cache, and its
    /// local shard if any. Returns the shard.
    pub fn remove_member(&mut self, id: &Key) -> Option<PeerShard> {
        self.members.remove(id);
        let pid = self.directory.id_of(id)?;
        self.peers.remove(pid)?.shard
    }

    /// The join envelope for peer `id` (which must already be a
    /// member): route `<PeerJoin, P, 0>` through the tree from a random
    /// node, or — before any tree exists — contact an arbitrary other
    /// peer and let the ring walk of Algorithm 2 place it.
    pub fn join_envelope(&mut self, id: &Key, rng: &mut StdRng) -> Envelope {
        match self.random_node(rng) {
            Some(entry) => Envelope::to_node(
                entry,
                NodeMsg::PeerJoin {
                    joining: id.clone(),
                    phase: JoinPhase::Up,
                },
            ),
            None => {
                let contact = self
                    .members
                    .iter()
                    .find(|k| *k != id)
                    .cloned()
                    .expect("at least one other peer");
                Envelope::to_peer(
                    contact,
                    PeerMsg::NewPredecessor {
                        joining: id.clone(),
                    },
                )
            }
        }
    }

    /// The registration envelope for `key`: enter the tree at a random
    /// node, or — before any tree exists — seed the first node through
    /// the peer layer (the `Host` ring walk places it per the mapping
    /// rule).
    pub fn insert_envelope(&mut self, key: Key, rng: &mut StdRng) -> Envelope {
        match self.random_node(rng) {
            Some(entry) => Envelope::to_node(entry, NodeMsg::DataInsertion { key }),
            None => {
                let contact = self.members.iter().next().cloned().expect("non-empty ring");
                Envelope::to_peer(
                    contact,
                    PeerMsg::Host {
                        seed: NodeSeed {
                            label: key.clone(),
                            father: None,
                            children: Vec::new(),
                            data: vec![key],
                        },
                    },
                )
            }
        }
    }

    // ------------------------------------------------------------------
    // Requests (entry, aggregation, completion) — the discovery flow
    // ------------------------------------------------------------------

    /// Starts a discovery request entering at `entry`: registers the
    /// aggregation state and builds the envelope to send.
    ///
    /// When caching is on the entry node's hosting peer — the overlay's
    /// access point for this request — consults its [`RouteCache`]
    /// first: a hit whose label is still live at the recorded epoch
    /// skips the whole upward climb and delivers the request straight
    /// to the covering node in `Down` phase; a stale hit is evicted and
    /// the request falls back to the normal up/down route, so results
    /// never depend on cache freshness. Satisfied exact queries teach
    /// the entry peer a fresh shortcut at completion
    /// ([`Engine::take_finished`] / [`Engine::finish_request`]).
    pub fn begin_request(&mut self, entry: &Key, query: QueryKind) -> Result<(u64, Envelope)> {
        let Some((lid, hid)) = self.directory.resolve(entry) else {
            return Err(DlptError::UnknownNode(entry.to_string()));
        };
        let id = self.next_request;
        self.next_request += 1;
        self.gathers.begin(id);
        if self.tracer.enabled() {
            self.tracer
                .emit(TraceEvent::new(EventKind::Admit, id, lid, hid, 0));
        }
        let mut shortcut: Option<Shortcut> = None;
        if self.config.cache_capacity > 0 {
            let target = query.target();
            let (hits0, stale0) = (self.cache_stats.hits, self.cache_stats.stale_hits);
            if let Some(slot) = self.peers.get_mut(hid) {
                shortcut = cache::consult(
                    &mut slot.cache,
                    &self.directory,
                    &target,
                    &mut self.cache_stats,
                );
                if self.tracer.enabled() {
                    let kind = if self.cache_stats.hits > hits0 {
                        EventKind::CacheHit
                    } else if self.cache_stats.stale_hits > stale0 {
                        EventKind::CacheStale
                    } else {
                        EventKind::CacheMiss
                    };
                    self.tracer.emit(TraceEvent::new(kind, id, lid, hid, 0));
                }
            }
            if shortcut.is_none() && matches!(query, QueryKind::Exact(_)) {
                self.learn.insert(id, (target, hid));
            }
        }
        let env = match shortcut {
            Some(sc) => cache::shortcut_envelope(id, query, sc),
            None => discovery::entry_envelope(entry.clone(), id, query),
        };
        if self.fault_recovery {
            // Only faultable transports can lose a branch; the retry
            // snapshot is the one per-request clone they pay for it.
            let agg = self.gathers.get_mut(id).expect("registered above");
            agg.retry = Some(env.clone());
        }
        Ok((id, env))
    }

    /// A clone of the entry envelope request `id` was admitted with —
    /// the verbatim origin a runtime re-sends after fault-induced
    /// loss. `None` unless fault recovery was on at admission.
    pub fn retry_envelope(&self, id: u64) -> Option<Envelope> {
        self.gathers.get(id)?.retry.clone()
    }

    /// Feeds one `ClientResponse` into the request's aggregation. With
    /// eager judging (the synchronous pump) the request finalizes into
    /// the finished set the moment no branch is outstanding; at
    /// quiescence judging the runtime calls
    /// [`Engine::finish_request`] once drained. Responses for already
    /// finalized (or unknown) requests are dropped as stale.
    pub fn client_response(&mut self, outcome: DiscoveryOutcome) {
        let fault_recovery = self.fault_recovery;
        let Some(agg) = self.gathers.get_mut(outcome.request_id) else {
            return; // stale response after request already finalized
        };
        if fault_recovery
            && outcome.satisfied
            && !outcome.dropped
            && !agg.seen.insert(response_digest(&outcome))
        {
            // A duplicated (or retried-and-redelivered) copy of a
            // response already applied: counting it again would
            // double-decrement `outstanding` below the true branch
            // count and finalize the request with partial results.
            // (Reliable transports cannot duplicate — fault-off runs
            // skip the digest entirely.)
            self.duplicates_suppressed += 1;
            if self.tracer.enabled() {
                self.tracer.emit(TraceEvent::new(
                    EventKind::DedupSuppress,
                    outcome.request_id,
                    0,
                    0,
                    outcome.path.len(),
                ));
            }
            return;
        }
        agg.outstanding += outcome.pending_children as i64 - 1;
        agg.satisfied &= outcome.satisfied;
        agg.dropped |= outcome.dropped;
        agg.responses += 1;
        if self.tracer.enabled() {
            let kind = if outcome.pending_children > 0 {
                EventKind::BranchOpen
            } else {
                EventKind::BranchClose
            };
            self.tracer.emit(TraceEvent::new(
                kind,
                outcome.request_id,
                outcome.pending_children,
                0,
                outcome.path.len(),
            ));
        }
        if agg.results.is_empty() {
            // Take over the first non-empty response's buffer instead
            // of copying out of it.
            agg.results = outcome.results;
        } else {
            agg.results.extend(outcome.results);
        }
        if outcome.path.len() > agg.best_path.len() {
            agg.best_path = outcome.path;
        }
        if !self.config.judge_at_quiescence && agg.outstanding <= 0 {
            let fin = self
                .gathers
                .release(outcome.request_id)
                .expect("present above");
            let satisfied = fin.satisfied && !fin.dropped;
            let attempts = fin.attempts;
            let out = self.assemble_outcome(fin, satisfied);
            self.record_finished(outcome.request_id, &out, attempts);
            self.finished.insert(outcome.request_id, out);
        }
    }

    /// Feeds a finalized request into the metrics registry and emits
    /// its terminal trace event. Called exactly once per request, at
    /// eager finalization or at [`Engine::finish_request`].
    fn record_finished(&mut self, id: u64, out: &LookupOutcome, attempts: u32) {
        let hops = out.logical_hops() as u64;
        let ticks = (out.path.len() + out.gather_visits) as u64;
        self.metrics
            .record_request(hops, ticks, out.gather_visits as u64, attempts as u64);
        if self.tracer.enabled() {
            let kind = if out.satisfied {
                EventKind::Satisfy
            } else {
                EventKind::Fail
            };
            self.tracer.emit(TraceEvent::new(
                kind,
                id,
                out.results.len() as u32,
                out.gather_visits as u32,
                out.logical_hops(),
            ));
        }
    }

    /// Builds the [`LookupOutcome`] from a completed aggregation.
    fn assemble_outcome(&self, agg: FinishedAgg, satisfied: bool) -> LookupOutcome {
        let mut results = agg.results;
        // Unstable sort: no scratch allocation, and equal keys are
        // byte-identical so stability is unobservable.
        results.sort_unstable();
        results.dedup();
        let mut host_path: Vec<Key> = Vec::with_capacity(agg.best_path.len());
        host_path.extend(
            agg.best_path
                .iter()
                .filter_map(|l| self.directory.host_of(l).cloned()),
        );
        let found = !results.is_empty() || satisfied;
        LookupOutcome {
            satisfied,
            found,
            dropped: agg.dropped,
            results,
            gather_visits: agg.responses.saturating_sub(1),
            host_path,
            path: agg.best_path,
        }
    }

    /// Takes the finalized outcome of request `id` (eager judging),
    /// applying the shortcut-learning intent when the outcome is
    /// satisfied. `None` when the request has not finalized.
    pub fn take_finished(&mut self, id: u64) -> Option<LookupOutcome> {
        // Not finalized: leave the learn intent in place — a
        // quiescence-judging caller resolves it via `finish_request`.
        let out = self.finished.remove(&id)?;
        if self.learn.is_empty() {
            return Some(out);
        }
        if let Some((target, host)) = self.learn.remove(&id) {
            if out.satisfied {
                // A satisfied exact query proves the target's own node
                // is live and owns the key: that node is the shortcut.
                self.learn_shortcut(target, host);
            }
        }
        Some(out)
    }

    /// Judges and removes request `id` at quiescence: a request is
    /// satisfied only if every branch responded satisfied, nothing was
    /// dropped, and no branch is still outstanding (the
    /// outstanding-branch counter can transiently touch zero while
    /// responses are in flight, so this must only be called once the
    /// transport is drained). Applies the shortcut-learning intent.
    pub fn finish_request(&mut self, id: u64) -> LookupOutcome {
        let fin = self.gathers.release(id).expect("request was registered");
        let satisfied = fin.satisfied && !fin.dropped && fin.outstanding <= 0;
        match self.learn.remove(&id) {
            Some((target, host)) if satisfied => self.learn_shortcut(target, host),
            _ => {}
        }
        let attempts = fin.attempts;
        let out = self.assemble_outcome(fin, satisfied);
        self.record_finished(id, &out, attempts);
        out
    }

    /// Whether request `id` is still waiting on an outstanding branch
    /// — i.e. a response was lost in transit and the request can only
    /// terminate through a retry or an explicit failure. Only
    /// meaningful once the transport has drained (mid-flight the
    /// counter is legitimately positive).
    pub fn retry_pending(&self, id: u64) -> bool {
        self.gathers.get(id).is_some_and(|agg| agg.outstanding > 0)
    }

    /// Rearms request `id` for a retry after fault-induced loss: the
    /// aggregation state is reset to exactly what
    /// [`Engine::begin_request`] installed, idempotency filter
    /// included — a retry legitimately re-delivers responses the
    /// first attempt already applied, and they must count again. The
    /// caller re-sends a clone of the original entry envelope.
    pub fn reset_request_for_retry(&mut self, id: u64) {
        if let Some(agg) = self.gathers.get_mut(id) {
            agg.rearm();
            agg.attempts += 1;
            let attempt = agg.attempts;
            if self.tracer.enabled() {
                self.tracer
                    .emit(TraceEvent::new(EventKind::Retry, id, attempt, 0, 0));
            }
        }
    }

    fn learn_shortcut(&mut self, target: Key, host: u32) {
        if let Some(sc) = cache::learned_shortcut(&self.directory, &target) {
            if let Some(slot) = self.peers.get_mut(host) {
                slot.cache.insert(target, sc);
                self.cache_stats.learned += 1;
            }
        }
    }

    /// Abandons an envelope whose requeue budget is exhausted. A lost
    /// discovery message must still resolve its request; anything else
    /// is a hard error.
    pub fn fail_undeliverable(&mut self, env: Envelope) -> Result<()> {
        self.stats.undeliverable += 1;
        if let Message::Node(NodeMsg::Discovery(m)) = &env.msg {
            if self.tracer.enabled() {
                let mut ev = TraceEvent::new(EventKind::Drop, m.request_id, 0, 0, m.path.len());
                ev.flags = 1;
                self.tracer.emit(ev);
            }
            self.client_response(DiscoveryOutcome {
                request_id: m.request_id,
                satisfied: false,
                dropped: true,
                results: Vec::new(),
                path: m.path.clone(),
                pending_children: 0,
            });
            return Ok(());
        }
        Err(DlptError::Undeliverable(format!("{:?}", env.to)))
    }

    // ------------------------------------------------------------------
    // The state machine
    // ------------------------------------------------------------------

    /// Processes one envelope: the single implementation of the
    /// dispatch every runtime used to mirror. Capacity charging,
    /// per-kind counters, discovery handling with replica failover,
    /// epoch bumps for structural mutations, and effect application
    /// (directory updates, cache invalidation, outgoing messages
    /// through `t`) all happen here.
    ///
    /// Hop chaining: on a [synchronous](Transport::synchronous)
    /// transport, an exact-query discovery visit whose only effect is
    /// the next hop (one envelope, no relocations) runs that hop
    /// inline instead of round-tripping it through the queue. An exact
    /// query has exactly one envelope in flight, so the chained run
    /// performs the identical state-change sequence the queued run
    /// would — it only skips the push/pop. A chained hop that cannot
    /// deliver yet re-enters the transport exactly as an unchained
    /// forward would have (a fresh queued envelope, not a requeue of
    /// its ancestor).
    pub fn deliver<T: Transport>(&mut self, t: &mut T, env: Envelope) -> Result<Step> {
        // The scratch effect buffer is checked out once for the whole
        // chain, not once per hop.
        let mut fx = std::mem::take(&mut self.scratch);
        let mut env = env;
        let mut chained = false;
        let res = loop {
            match self.deliver_step(t, env, &mut fx) {
                Ok(ChainStep::Chain(next)) => {
                    env = next;
                    chained = true;
                }
                Ok(ChainStep::Step(Step::Requeue(e))) if chained => {
                    t.deliver(e);
                    break Ok(Step::Done);
                }
                Ok(ChainStep::Step(s)) => break Ok(s),
                Err(e) => break Err(e),
            }
        };
        self.scratch = fx;
        res
    }

    fn deliver_step<T: Transport>(
        &mut self,
        t: &mut T,
        env: Envelope,
        fx: &mut Effects,
    ) -> Result<ChainStep> {
        // Destructure: addresses are matched by move, so the hot path
        // clones no `Address` (a requeue rebuilds the envelope from the
        // owned parts).
        let Envelope { to, msg } = env;
        match to {
            Address::Client(_) => {
                if let Message::ClientResponse(outcome) = msg {
                    self.client_response(outcome);
                    Ok(ChainStep::Step(Step::Done))
                } else {
                    Err(DlptError::Undeliverable("client".into()))
                }
            }
            Address::Peer(id) => {
                // One interner probe replaces the `BTreeSet` membership
                // walk: a peer is live iff its id has a slab slot.
                let Some(pid) = self
                    .directory
                    .id_of(&id)
                    .filter(|&p| self.peers.contains(p))
                else {
                    return Ok(ChainStep::Step(Step::Requeue(Envelope::to_address(
                        Address::Peer(id),
                        msg,
                    ))));
                };
                // Replication and cache traffic are counted apart so
                // the k = 1 / cache-off system's stats stay
                // byte-identical.
                if is_replication_msg(&msg) {
                    self.repl_stats.replication_messages += 1;
                } else if let Message::Peer(PeerMsg::InvalidateCached { label, epoch }) = msg {
                    // The engine owns the route caches, so the eager
                    // invalidation broadcast terminates here — the one
                    // epoch-guarded handler all runtimes share
                    // (`RouteCache::invalidate_label` spares entries
                    // re-learned at a fresher epoch, so reordered
                    // deliveries are harmless).
                    self.cache_stats.invalidations_delivered += 1;
                    if let Some(slot) = self.peers.get_mut(pid) {
                        slot.cache.invalidate_label(&label, epoch);
                    }
                    return Ok(ChainStep::Step(Step::Done));
                } else {
                    count_message(&mut self.stats, &msg);
                }
                // Track a freshly created root before the seed moves.
                let new_root = match &msg {
                    Message::Peer(PeerMsg::Host { seed }) if seed.father.is_none() => {
                        Some(seed.label.clone())
                    }
                    _ => None,
                };
                let shard = self
                    .peers
                    .get_mut(pid)
                    .and_then(|s| s.shard.as_mut())
                    .expect("peer-addressed deliveries require a local shard");
                match msg {
                    Message::Peer(m) => protocol::handle_peer_msg(shard, m, fx),
                    _ => return Err(DlptError::Undeliverable(format!("{id}"))),
                }
                if let Some(label) = new_root {
                    if fx.relocated.iter().any(|(l, _)| l == &label) {
                        self.root = Some(label);
                    }
                }
                self.apply(fx, t);
                Ok(ChainStep::Step(Step::Done))
            }
            Address::Node(label) => {
                // One directory probe resolves label id + host id; the
                // host's shard is then a flat slab index away (the old
                // path paid two `BTreeMap` walks and a `Key` clone).
                let Some((lid, hid)) = self.directory.resolve(&label) else {
                    return Ok(ChainStep::Step(Step::Requeue(Envelope::to_address(
                        Address::Node(label),
                        msg,
                    ))));
                };
                // One shard probe serves the whole delivery: the
                // existence check, the capacity charge and the handler
                // run under a single borrow; requeues and capacity
                // drops exit with the message intact.
                enum Gate {
                    Delivered,
                    /// Delivered an exact-query discovery visit — the
                    /// one delivery kind eligible for hop chaining.
                    DeliveredExact,
                    /// Delivered a node message that may have mutated
                    /// the node's state (epoch advances, replicas must
                    /// refresh).
                    DeliveredMutation,
                    Requeue(Message),
                    Dropped(DiscoveryMsg),
                }
                let stats = &mut self.stats;
                let charge = self.config.charge_capacity;
                let gate = match self.peers.get_mut(hid).and_then(|s| s.shard.as_mut()) {
                    None => Gate::Requeue(msg),
                    Some(shard) => match msg {
                        // Capacity model (Section 4): a peer's capacity
                        // bounds the requests it can process per unit,
                        // and processing includes routing — "the upper
                        // a node is, the more times it will be visited
                        // by a request" is exactly what makes load
                        // balancing matter (Section 3.3) — so every
                        // visit charges the hosting peer one unit and
                        // counts toward the node's offered load l_n.
                        // The asynchronous runtimes leave capacity to
                        // the experiment harness and skip the charge.
                        Message::Node(NodeMsg::Discovery(m)) => {
                            let exact = matches!(m.query, QueryKind::Exact(_));
                            // Two register moves, captured before the
                            // visit takes ownership of the message.
                            let (req, hops) = (m.request_id, m.path.len());
                            match discovery::deliver_visit(shard, &label, m, charge, fx) {
                                // In flight between shards (hand-off
                                // under way): try later.
                                discovery::VisitGate::Missing(m) => {
                                    Gate::Requeue(Message::Node(NodeMsg::Discovery(m)))
                                }
                                discovery::VisitGate::Delivered => {
                                    stats.discovery_messages += 1;
                                    if self.tracer.enabled() {
                                        self.tracer.emit(TraceEvent::new(
                                            EventKind::Hop,
                                            req,
                                            lid,
                                            hid,
                                            hops,
                                        ));
                                    }
                                    if exact {
                                        Gate::DeliveredExact
                                    } else {
                                        Gate::Delivered
                                    }
                                }
                                discovery::VisitGate::Dropped(m) => Gate::Dropped(m),
                            }
                        }
                        Message::Node(m) => {
                            if shard.nodes.contains_key(&label) {
                                count_node_msg(stats, &m);
                                protocol::handle_node_msg(shard, &label, m, fx);
                                Gate::DeliveredMutation
                            } else {
                                Gate::Requeue(Message::Node(m))
                            }
                        }
                        other => {
                            return Err(DlptError::Undeliverable(format!("{label}: {other:?}")));
                        }
                    },
                };
                match gate {
                    Gate::Requeue(msg) => Ok(ChainStep::Step(Step::Requeue(Envelope::to_address(
                        Address::Node(label),
                        msg,
                    )))),
                    Gate::Dropped(m) => {
                        // Failover: a follower copy with spare capacity
                        // can serve the read the primary refused.
                        let m = if self.config.replication > 1 {
                            match self.failover_read(&label, m, fx) {
                                None => {
                                    self.apply(fx, t);
                                    return Ok(ChainStep::Step(Step::Done));
                                }
                                Some(m) => m,
                            }
                        } else {
                            m
                        };
                        self.stats.discovery_drops += 1;
                        let request_id = m.request_id;
                        let mut path = m.path;
                        path.push(label);
                        if self.tracer.enabled() {
                            self.tracer.emit(TraceEvent::new(
                                EventKind::Drop,
                                request_id,
                                lid,
                                hid,
                                path.len(),
                            ));
                        }
                        self.client_response(DiscoveryOutcome {
                            request_id,
                            satisfied: false,
                            dropped: true,
                            results: Vec::new(),
                            path,
                            pending_children: 0,
                        });
                        Ok(ChainStep::Step(Step::Done))
                    }
                    Gate::Delivered => {
                        self.apply(fx, t);
                        Ok(ChainStep::Step(Step::Done))
                    }
                    Gate::DeliveredExact => {
                        // Hop chaining (see `deliver`): hand the lone
                        // follow-up back to the dispatch loop instead
                        // of round-tripping it through the queue.
                        if t.synchronous()
                            && fx.out.len() == 1
                            && fx.relocated.is_empty()
                            && fx.removed.is_empty()
                        {
                            let next = fx.out.pop().expect("length checked");
                            return Ok(ChainStep::Chain(next));
                        }
                        self.apply(fx, t);
                        Ok(ChainStep::Step(Step::Done))
                    }
                    Gate::DeliveredMutation => {
                        if self.config.eager_replication && self.config.replication > 1 {
                            self.touched.push(lid);
                        }
                        // Any non-discovery node message may have
                        // mutated the node's structure: advance its
                        // epoch so learned shortcuts re-validate.
                        self.directory.bump_epoch_id(lid);
                        self.apply(fx, t);
                        Ok(ChainStep::Step(Step::Done))
                    }
                }
            }
        }
    }

    /// Delivers one eager-invalidation message to peer `id`'s cache —
    /// the epoch guard (`shortcut.epoch <= epoch` evicts, fresher
    /// re-learned entries survive) lives in
    /// [`RouteCache::invalidate_label`] and nowhere else. Runtimes that
    /// resolve peer frames outside [`Engine::deliver`] (the framed
    /// router) terminate their invalidation frames here.
    pub fn deliver_invalidation(&mut self, id: &Key, label: &Key, epoch: u64) {
        self.cache_stats.invalidations_delivered += 1;
        if let Some(slot) = self.directory.id_of(id).and_then(|p| self.peers.get_mut(p)) {
            slot.cache.invalidate_label(label, epoch);
        }
    }

    /// Applies (and drains) the effect buffers, leaving `fx` empty with
    /// its capacity intact so callers can reuse it allocation-free:
    /// relocations update the directory (and schedule re-replication),
    /// dissolutions drop the label, broadcast eager cache invalidation
    /// and clear a dissolved root, outgoing envelopes enter `t`.
    pub fn apply<T: Transport>(&mut self, fx: &mut Effects, t: &mut T) {
        let eager = self.config.eager_replication && self.config.replication > 1;
        for (label, host) in fx.relocated.drain(..) {
            let lid = self.directory.insert(label, host);
            if eager {
                self.touched.push(lid);
            }
        }
        for label in fx.removed.drain(..) {
            if eager {
                // The node dissolved: schedule its copies for GC
                // (before the removal clears the follower record).
                if let Some(lid) = self.directory.id_of(&label) {
                    for &f in self.directory.follower_ids(lid) {
                        self.dropped_replicas.push((lid, f));
                    }
                }
            }
            self.directory.remove(&label);
            // Dissolution is the cheap eager-invalidation case: every
            // shortcut through the dead label is now a guaranteed
            // stale hit, so broadcasting beats paying the fallback.
            self.queue_invalidations(&label, t);
            if self.root.as_ref() == Some(&label) {
                self.root = None; // recomputed by the runtime
            }
        }
        for env in fx.out.drain(..) {
            t.deliver(env);
        }
    }

    /// Records that `label`'s state changed and its replicas are stale
    /// (no-op unless eagerly replicating).
    pub(crate) fn mark_touched(&mut self, label: &Key) {
        if self.config.eager_replication && self.config.replication > 1 {
            let lid = self.directory.intern(label);
            self.touched.push(lid);
        }
    }

    /// Broadcasts [`PeerMsg::InvalidateCached`] for `label` to every
    /// live peer (no-op with caching off). Called where eager
    /// invalidation is cheap — dissolutions and migrations — while the
    /// per-hit epoch check covers everything else lazily.
    pub fn queue_invalidations<T: Transport>(&mut self, label: &Key, t: &mut T) {
        if self.config.cache_capacity == 0 {
            return;
        }
        let epoch = self.directory.epoch_of(label);
        self.cache_stats.invalidations_sent += self.members.len() as u64;
        let members = &self.members;
        t.broadcast(members.iter().map(|p| {
            Envelope::to_peer(
                p.clone(),
                PeerMsg::InvalidateCached {
                    label: label.clone(),
                    epoch,
                },
            )
        }));
    }

    // ------------------------------------------------------------------
    // Replication orchestration (`protocol::repair`)
    // ------------------------------------------------------------------

    /// Eager replica maintenance: re-clones every node touched since
    /// the last flush onto its `k - 1` ring successors and
    /// garbage-collects copies of dissolved nodes. The synchronous
    /// pump calls this (then drains) after every public mutating
    /// operation, so replica state tracks the data plane without
    /// waiting for the next anti-entropy pass. No-op at `k = 1` or
    /// without eager replication.
    pub fn flush_replication<T: Transport>(&mut self, t: &mut T) {
        if self.config.replication <= 1
            || (self.touched.is_empty() && self.dropped_replicas.is_empty())
        {
            return;
        }
        let k = self.config.replication;
        for (lid, fid) in std::mem::take(&mut self.dropped_replicas) {
            // A follower is live iff its peer id still has a slot.
            if let Some(slot) = self.peers.get(fid) {
                t.deliver(Envelope::to_peer(
                    slot.key.clone(),
                    PeerMsg::DropReplica {
                        label: self.directory.key_of(lid).clone(),
                    },
                ));
            }
        }
        let mut touched_ids = std::mem::take(&mut self.touched);
        // Render ids back to keys once, then sort lexicographically so
        // the flush order (and thus the fingerprint) is id-assignment
        // independent.
        let mut touched: Vec<Key> = touched_ids
            .iter()
            .map(|&l| self.directory.key_of(l).clone())
            .collect();
        touched.sort();
        touched.dedup();
        let peers: Vec<Key> = self.members.iter().cloned().collect();
        for label in &touched {
            let Some(primary) = self.directory.host_of(label).cloned() else {
                continue; // dissolved during the same drain
            };
            let targets = repair::successors_of(&peers, &primary, k - 1);
            let stale: Vec<Key> = self
                .directory
                .followers_of(label)
                .filter(|f| !targets.contains(f))
                .cloned()
                .collect();
            for f in stale {
                if self.members.contains(&f) {
                    t.deliver(Envelope::to_peer(
                        f,
                        PeerMsg::DropReplica {
                            label: label.clone(),
                        },
                    ));
                }
            }
            self.directory.set_followers(label, &targets);
            if targets.is_empty() {
                continue;
            }
            let env = {
                let Some(shard) = self.shard(&primary) else {
                    continue;
                };
                let Some(node) = shard.nodes.get(label) else {
                    continue; // relocation still in flight
                };
                Envelope::to_peer(
                    shard.peer.succ.clone(),
                    PeerMsg::Replicate {
                        primary: primary.clone(),
                        ttl: (k - 1) as u32,
                        seed: NodeSeed::of(node),
                    },
                )
            };
            t.deliver(env);
            self.repl_stats.eager_syncs += 1;
        }
        touched_ids.clear();
        self.touched = touched_ids; // hand the capacity back
    }

    /// The planning half of a self-healing anti-entropy pass over
    /// *local* shards: re-plans follower sets, counts under-replicated
    /// labels, garbage-collects stale copies and — unless the overlay
    /// is already converged under eager maintenance — kicks every peer
    /// with `SyncReplicas`. Returns the report and whether anything
    /// was enqueued (the runtime then drains and fills in
    /// `messages_sent`). No-op at `k = 1`.
    pub fn anti_entropy_scan<T: Transport>(&mut self, t: &mut T) -> (AntiEntropyReport, bool) {
        let k = self.config.replication;
        let mut report = AntiEntropyReport::default();
        if k <= 1 || self.members.len() <= 1 {
            return (report, false);
        }
        self.repl_stats.anti_entropy_passes += 1;
        let peers: Vec<Key> = self.members.iter().cloned().collect();
        let want = (k - 1).min(peers.len() - 1);
        // Re-plan the follower sets over the current ring, then count
        // the labels whose *planned* followers are missing a live copy
        // — this catches crashed followers and placement displaced by
        // joins alike.
        repair::refresh_follower_records(&mut self.directory, &peers, k);
        for (label, _) in self.directory.iter() {
            let live_copies = self
                .directory
                .followers_of(label)
                .filter(|f| {
                    self.shard(f)
                        .map(|s| s.replicas.contains_key(label))
                        .unwrap_or(false)
                })
                .count();
            if live_copies < want {
                report.under_replicated += 1;
            }
        }
        // GC copies whose label died or whose holder left the set
        // (ring order: the drop envelopes are fingerprint-visible).
        let mut drops: Vec<(Key, Key)> = Vec::new();
        for (pid, shard) in self.shards() {
            for rl in shard.replicas.keys() {
                let keep = self.directory.contains(rl)
                    && self.directory.followers_of(rl).any(|f| f == pid);
                if !keep {
                    drops.push((pid.clone(), rl.clone()));
                }
            }
        }
        report.replicas_dropped = drops.len();
        // Converged pass: under eager maintenance the flush keeps copy
        // *content* fresh, so when every label has its full live
        // follower set and nothing needs GC the blanket re-clone would
        // be pure steady-state traffic — skip it. (Runtimes without
        // the eager path always re-clone: `anti_entropy_kick`.)
        if report.under_replicated == 0 && drops.is_empty() {
            return (report, false);
        }
        for (pid, label) in drops {
            t.deliver(Envelope::to_peer(pid, PeerMsg::DropReplica { label }));
        }
        for p in &peers {
            t.deliver(Envelope::to_peer(
                p.clone(),
                PeerMsg::SyncReplicas { k: k as u32 },
            ));
        }
        (report, true)
    }

    /// The simple anti-entropy pass of the asynchronous runtimes (no
    /// eager flush to lean on): re-plan the follower records, then kick
    /// every peer with `SyncReplicas` so each re-clones its nodes along
    /// the ring. The runtime drains afterwards. No-op at `k = 1`.
    pub fn anti_entropy_kick<T: Transport>(&mut self, t: &mut T) -> bool {
        let k = self.config.replication;
        if k <= 1 || self.members.len() <= 1 {
            return false;
        }
        let peers: Vec<Key> = self.members.iter().cloned().collect();
        repair::refresh_follower_records(&mut self.directory, &peers, k);
        t.broadcast(
            peers
                .into_iter()
                .map(|p| Envelope::to_peer(p, PeerMsg::SyncReplicas { k: k as u32 })),
        );
        true
    }

    /// Serves a capacity-refused discovery visit from a live follower
    /// copy, charging the follower's capacity instead. Returns the
    /// message when no follower can serve it (the caller then counts
    /// the drop as before).
    fn failover_read(
        &mut self,
        label: &Key,
        msg: DiscoveryMsg,
        fx: &mut Effects,
    ) -> Option<DiscoveryMsg> {
        let followers: Vec<Key> = self.directory.followers_of(label).cloned().collect();
        for f in followers {
            let Some(shard) = self.shard_mut(&f) else {
                continue;
            };
            if !shard.replicas.contains_key(label) || !shard.peer.try_accept() {
                continue;
            }
            let node = shard.replicas.get_mut(label).expect("checked");
            node.load += 1;
            discovery::on_discovery_at(node, msg, fx);
            self.repl_stats.failover_reads += 1;
            return None;
        }
        Some(msg)
    }

    /// The distinct live peers currently holding a copy of `label`
    /// (primary first, then followers in ring order). Empty when the
    /// label is not a live node. Local shards only.
    pub fn replica_hosts(&self, label: &Key) -> Vec<Key> {
        let mut out = Vec::new();
        if let Some(p) = self.directory.host_of(label) {
            if self
                .shard(p)
                .map(|s| s.nodes.contains_key(label))
                .unwrap_or(false)
            {
                out.push(p.clone());
            }
        }
        for f in self.directory.followers_of(label) {
            let holds = self
                .shard(f)
                .map(|s| s.replicas.contains_key(label))
                .unwrap_or(false);
            if holds && !out.contains(f) {
                out.push(f.clone());
            }
        }
        out
    }

    /// Failover after a primary crash: moves a surviving follower copy
    /// of `label` onto the peer the mapping rule now designates
    /// (usually the copy's own holder — the first live follower *is*
    /// the crashed primary's ring successor), updates the directory
    /// and prunes dead follower records. Returns false when no live
    /// copy exists.
    fn promote_from_followers(&mut self, label: &Key) -> bool {
        let holder = self
            .directory
            .followers_of(label)
            .find(|f| {
                self.shard(f)
                    .map(|s| s.replicas.contains_key(label))
                    .unwrap_or(false)
            })
            .cloned();
        let Some(holder) = holder else {
            return false;
        };
        let copy = self
            .shard_mut(&holder)
            .expect("holder is live")
            .replicas
            .remove(label)
            .expect("copy is present");
        let target = self.host_peer(label).expect("ring non-empty").clone();
        self.shard_mut(&target)
            .expect("mapping points at live peers")
            .install(copy);
        // Ownership transfer as an explicit handoff record: when the
        // crashed primary's entry is still present (the crash path
        // promotes before pruning), the record names the dead owner;
        // a re-insert after pruning carries no previous owner.
        let handoff = self.directory.handoff(label, &target);
        debug_assert_ne!(
            handoff.from,
            Some(handoff.to),
            "promotion must move ownership off the crashed primary"
        );
        // Keep the surviving follower records; the next anti-entropy
        // pass re-fills the set to k - 1.
        let remaining: Vec<Key> = self
            .directory
            .followers_of(label)
            .filter(|f| **f != target && self.contains_peer(f))
            .cloned()
            .collect();
        self.directory.set_followers(label, &remaining);
        true
    }

    /// Verifies the replication invariant: every live node has
    /// `min(k, |P|)` distinct live replica hosts. Trivially true at
    /// `k = 1` (the mapping invariant covers the single copy).
    pub fn check_replication(&self) -> std::result::Result<(), String> {
        let k = self.config.replication;
        if k <= 1 {
            return Ok(());
        }
        let want = k.min(self.members.len());
        for (label, _) in self.directory.iter() {
            let hosts = self.replica_hosts(label);
            if hosts.len() < want {
                return Err(format!(
                    "node {label} has {} live replica hosts {:?}, invariant demands {want}",
                    hosts.len(),
                    hosts
                ));
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Churn over local shards (shared by the sync and latency runtimes)
    // ------------------------------------------------------------------

    /// Graceful departure: the peer hands its nodes to its successor
    /// and splices itself out (Section 4's churn model). The hand-off
    /// traffic enters `t`; the runtime drains afterwards.
    pub fn leave_shard<T: Transport>(&mut self, id: &Key, t: &mut T) -> Result<()> {
        let mut shard = self
            .remove_member(id)
            .ok_or_else(|| DlptError::UnknownPeer(id.to_string()))?;
        if self.members.is_empty() {
            // Last peer: the overlay disappears with it.
            self.directory.clear();
            self.root = None;
            return Ok(());
        }
        let mut fx = std::mem::take(&mut self.scratch);
        maintenance::leave(&mut shard, &mut fx);
        self.stats.maintenance_messages += fx.out.len() as u64;
        if self.config.eager_replication && self.config.replication > 1 {
            // The departing peer's follower copies vanish with it; its
            // hand-off therefore also kicks the affected primaries to
            // re-clone, so a graceful leave never opens a
            // single-failure data-loss window.
            for label in shard.replicas.keys() {
                let lid = self.directory.intern(label);
                self.touched.push(lid);
            }
        }
        self.apply(&mut fx, t);
        self.scratch = fx;
        Ok(())
    }

    /// Moves one node to another peer, updating the directory and
    /// eagerly invalidating shortcuts through it. Used by the
    /// balancers; counted as balance traffic. The runtime drains `t`
    /// afterwards.
    pub fn migrate_shard_node<T: Transport>(
        &mut self,
        label: &Key,
        to: &Key,
        t: &mut T,
    ) -> Result<()> {
        let from = self
            .directory
            .host_of(label)
            .cloned()
            .ok_or_else(|| DlptError::UnknownNode(label.to_string()))?;
        if &from == to {
            return Ok(());
        }
        if self.shard(to).is_none() {
            return Err(DlptError::UnknownPeer(to.to_string()));
        }
        let node = self
            .shard_mut(&from)
            .expect("directory points at live peers")
            .evict(label)
            .expect("directory is consistent");
        self.shard_mut(to).expect("checked").install(node);
        // The directory records the move as an explicit ownership
        // handoff from the old owner to the new one — the same
        // evict/install pair above, restated in interned-id space for
        // slice-partitioned consumers.
        let handoff = self.directory.handoff(label, to);
        debug_assert_eq!(
            handoff.from,
            self.directory.id_of(&from),
            "handoff must name the evicted owner"
        );
        self.mark_touched(label);
        self.stats.balance_migrations += 1;
        // A migration stales every shortcut pointing at the old host;
        // the balancers migrate rarely, so eager invalidation is cheap.
        self.queue_invalidations(label, t);
        Ok(())
    }

    /// Changes a peer's identifier in place (the MLT boundary move).
    /// Ring links of both neighbours, the directory entries of hosted
    /// nodes, the membership set and the peer's entry-point cache all
    /// follow.
    pub fn rename_shard(&mut self, old: &Key, new: Key) -> Result<()> {
        if old == &new {
            return Ok(());
        }
        if self.members.contains(&new) {
            return Err(DlptError::DuplicatePeer(new.to_string()));
        }
        let old_pid = self
            .directory
            .id_of(old)
            .filter(|&p| self.peers.get(p).is_some_and(|s| s.shard.is_some()))
            .ok_or_else(|| DlptError::UnknownPeer(old.to_string()))?;
        let new_pid = self.directory.intern(&new);
        // The slot — shard, entry-point cache, free-list position —
        // survives the rename: only the id binding moves, so learned
        // shortcuts and slab integrity carry over.
        self.peers.rebind(old_pid, new_pid);
        self.members.remove(old);
        let eager = self.config.eager_replication && self.config.replication > 1;
        let slot = self.peers.get_mut(new_pid).expect("just re-bound");
        slot.key = new.clone();
        let shard = slot.shard.as_mut().expect("checked above");
        let (pred, succ) = (shard.peer.pred.clone(), shard.peer.succ.clone());
        shard.peer.id = new.clone();
        if pred == *old {
            shard.peer.pred = new.clone();
        }
        if succ == *old {
            shard.peer.succ = new.clone();
        }
        let hosted: Vec<Key> = shard.nodes.keys().cloned().collect();
        for label in hosted {
            let lid = self.directory.insert(label, new.clone());
            if eager {
                self.touched.push(lid);
            }
        }
        self.members.insert(new.clone());
        if let Some(p) = self.shard_mut(&pred) {
            if p.peer.succ == *old {
                p.peer.succ = new.clone();
            }
        }
        if let Some(s) = self.shard_mut(&succ) {
            if s.peer.pred == *old {
                s.peer.pred = new.clone();
            }
        }
        self.stats.peer_renames += 1;
        Ok(())
    }

    /// Non-graceful departure: the peer vanishes and the ring heals
    /// around it. Without replication (`k = 1`) every node the peer ran
    /// — and its registered data — is lost. With `k > 1` each lost node
    /// fails over to a surviving follower copy (`protocol::repair`);
    /// only nodes with no live replica are lost. Returns the labels of
    /// the *lost* nodes.
    pub fn crash_shard(&mut self, id: &Key) -> Result<Vec<Key>> {
        let shard = self
            .remove_member(id)
            .ok_or_else(|| DlptError::UnknownPeer(id.to_string()))?;
        let hosted: Vec<Key> = shard.nodes.keys().cloned().collect();
        if self.members.is_empty() {
            // Last peer: the overlay disappears with it.
            self.directory.clear();
            self.root = None;
            self.stats.nodes_lost += hosted.len() as u64;
            if self.config.replication > 1 {
                self.repl_stats.unrecoverable_nodes += hosted.len() as u64;
            }
            return Ok(hosted);
        }
        // Failure-detector stand-in: neighbours notice and heal.
        let (pred, succ) = (shard.peer.pred.clone(), shard.peer.succ.clone());
        if let Some(p) = self.shard_mut(&pred) {
            p.peer.succ = if succ == *id {
                pred.clone()
            } else {
                succ.clone()
            };
        }
        if let Some(s) = self.shard_mut(&succ) {
            s.peer.pred = if pred == *id {
                succ.clone()
            } else {
                pred.clone()
            };
        }
        // Failover: promote surviving follower copies; lose the rest.
        let mut lost = Vec::new();
        for label in hosted {
            if self.config.replication > 1 && self.promote_from_followers(&label) {
                self.repl_stats.promotions += 1;
            } else {
                self.directory.remove(&label);
                if self.config.replication > 1 {
                    self.repl_stats.unrecoverable_nodes += 1;
                }
                lost.push(label);
            }
        }
        self.stats.nodes_lost += lost.len() as u64;
        if self
            .root
            .as_ref()
            .map(|r| lost.contains(r))
            .unwrap_or(false)
        {
            self.root = None;
        }
        Ok(lost)
    }

    // ------------------------------------------------------------------
    // Validation against the paper's invariants (local shards)
    // ------------------------------------------------------------------

    /// Test-only: verifies the peer slab's internal consistency — the
    /// id→slot index, the occupied slots and the free list partition
    /// the slab exactly, and every live slot's key interns back to the
    /// id that maps to it (the no-aliasing property id reuse after a
    /// rename depends on).
    #[cfg(test)]
    pub(crate) fn check_slab(&self) -> std::result::Result<(), String> {
        use std::collections::HashSet;
        let slab = &self.peers;
        let mut seen: HashSet<u32> = HashSet::new();
        let mut live = 0usize;
        for (pid, &s) in slab.by_id.iter().enumerate() {
            if s == SLOT_NONE {
                continue;
            }
            live += 1;
            let slot = slab
                .slots
                .get(s as usize)
                .and_then(|o| o.as_ref())
                .ok_or_else(|| format!("peer id {pid} maps to empty slot {s}"))?;
            if !seen.insert(s) {
                return Err(format!("slot {s} is referenced by two peer ids"));
            }
            match self.directory.id_of(&slot.key) {
                Some(id) if id as usize == pid => {}
                other => {
                    return Err(format!(
                        "slot {s} holds key {} which interns to {other:?}, \
                         but is indexed under peer id {pid}",
                        slot.key
                    ));
                }
            }
        }
        let mut freed: HashSet<u32> = HashSet::new();
        for &f in &slab.free {
            if !freed.insert(f) {
                return Err(format!("slot {f} appears twice on the free list"));
            }
            if seen.contains(&f) {
                return Err(format!("slot {f} is both live and on the free list"));
            }
            if slab.slots.get(f as usize).is_none_or(|o| o.is_some()) {
                return Err(format!("free slot {f} still holds a peer"));
            }
        }
        if live + slab.free.len() != slab.slots.len() {
            return Err(format!(
                "slab leak: {live} live + {} free != {} slots",
                slab.free.len(),
                slab.slots.len()
            ));
        }
        // Every live node label must resolve to a peer with a slot.
        for (label, host) in self.directory.iter() {
            let hid = self
                .directory
                .id_of(host)
                .ok_or_else(|| format!("host {host} of {label} never interned"))?;
            if !slab.contains(hid) {
                return Err(format!("host {host} of {label} has no slab slot"));
            }
        }
        Ok(())
    }

    /// Verifies `host(n) = min {P : P >= n}` for every node.
    pub fn check_mapping(&self) -> std::result::Result<(), MappingViolation> {
        for (label, actual) in self.directory.iter() {
            let expected = self.host_peer(label).expect("ring non-empty");
            if actual != expected {
                return Err(MappingViolation::WrongHost {
                    node: label.clone(),
                    actual: actual.clone(),
                    expected: expected.clone(),
                });
            }
        }
        Ok(())
    }

    /// Verifies that every peer's pred/succ links agree with the ring
    /// order of identifiers.
    pub fn check_ring(&self) -> std::result::Result<(), MappingViolation> {
        for (id, shard) in self.shards() {
            let want_pred = self.ring_pred(id).expect("non-empty");
            let want_succ = self.ring_succ(id).expect("non-empty");
            if &shard.peer.pred != want_pred {
                return Err(MappingViolation::BrokenRingLink {
                    peer: id.clone(),
                    detail: format!("pred is {}, ring order says {}", shard.peer.pred, want_pred),
                });
            }
            if &shard.peer.succ != want_succ {
                return Err(MappingViolation::BrokenRingLink {
                    peer: id.clone(),
                    detail: format!("succ is {}, ring order says {}", shard.peer.succ, want_succ),
                });
            }
        }
        Ok(())
    }

    /// Verifies Definition 1 over the distributed tree: bidirectional
    /// father/child links and pairwise-GCP labels.
    pub fn check_tree(&self) -> std::result::Result<(), TrieViolation> {
        for shard in self.local_shards() {
            for node in shard.nodes.values() {
                for d in &node.data {
                    if d != &node.label {
                        return Err(TrieViolation::DataLabelMismatch {
                            node: node.label.clone(),
                            data: d.clone(),
                        });
                    }
                }
                if let Some(f) = &node.father {
                    let father = self
                        .node(f)
                        .ok_or_else(|| TrieViolation::BrokenParentLink {
                            node: node.label.clone(),
                        })?;
                    if !father.children.contains(&node.label) {
                        return Err(TrieViolation::BrokenParentLink {
                            node: node.label.clone(),
                        });
                    }
                }
                let children: Vec<&Key> = node.children.iter().collect();
                for c in &children {
                    let child = self
                        .node(c)
                        .ok_or_else(|| TrieViolation::BrokenParentLink { node: (*c).clone() })?;
                    if child.father.as_ref() != Some(&node.label) {
                        return Err(TrieViolation::BrokenParentLink { node: (*c).clone() });
                    }
                    if !node.label.is_proper_prefix_of(c) {
                        return Err(TrieViolation::ChildNotExtension {
                            parent: node.label.clone(),
                            child: (*c).clone(),
                        });
                    }
                }
                for (i, a) in children.iter().enumerate() {
                    for b in &children[i + 1..] {
                        if a.gcp_len(b) != node.label.len() {
                            return Err(TrieViolation::PairGcpMismatch {
                                parent: node.label.clone(),
                                a: (*a).clone(),
                                b: (*b).clone(),
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Builds the sequential oracle for the currently registered keys.
    /// A correct overlay has exactly the oracle's node labels.
    pub fn oracle(&self) -> PgcpTrie {
        let mut t = PgcpTrie::new();
        for k in self.registered_keys() {
            t.insert(k);
        }
        t
    }

    /// Closes the current time unit: every peer's capacity counter
    /// resets and every node's offered load is archived for the
    /// balancers (Section 3.3's "recent history").
    pub fn end_time_unit(&mut self) {
        for slot in self.peers.iter_slots_mut() {
            if let Some(shard) = slot.shard.as_mut() {
                shard.peer.roll_unit();
                for node in shard.nodes.values_mut() {
                    node.roll_unit();
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // System-health observatory (`crate::obs::health`)
    // ------------------------------------------------------------------

    /// Audits directory↔slab↔trie↔replication cross-consistency and
    /// returns every violation found instead of panicking, so fault and
    /// partition scenarios can be audited mid-recovery. The checks are
    /// read-only and cover what is *locally* verifiable: trie and ring
    /// invariants are checked over locally hosted shards only (the
    /// threaded runtime's engine is a router whose shards live on peer
    /// threads), while directory, slab, mapping, replication-record and
    /// cache-epoch checks run on every runtime. An empty result after
    /// quiescence is the suite-wide invariant
    /// (`tests/runtime_equivalence.rs`).
    pub fn audit(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        let mut push = |check: AuditCheck, detail: String| out.push(Violation { check, detail });

        // Interner round-trip: every id resolves back to itself.
        for id in 0..self.directory.interned_len() as u32 {
            let k = self.directory.key_of(id);
            if self.directory.id_of(k) != Some(id) {
                push(
                    AuditCheck::Directory,
                    format!("interned id {id} ({k}) does not round-trip"),
                );
            }
        }

        // Slab integrity: id↔slot bijection, free-list partition, and
        // key↔id agreement (the runtime twin of the test-only
        // `check_slab`).
        let slab = &self.peers;
        let mut slot_owner: Vec<Option<u32>> = vec![None; slab.slots.len()];
        let mut live = 0usize;
        for (pid, &s) in slab.by_id.iter().enumerate() {
            if s == SLOT_NONE {
                continue;
            }
            live += 1;
            match slab.slots.get(s as usize).and_then(|o| o.as_ref()) {
                None => push(
                    AuditCheck::Slab,
                    format!("peer id {pid} maps to empty slot {s}"),
                ),
                Some(slot) => {
                    if let Some(prev) = slot_owner[s as usize].replace(pid as u32) {
                        push(
                            AuditCheck::Slab,
                            format!("slot {s} referenced by peer ids {prev} and {pid}"),
                        );
                    }
                    if self.directory.id_of(&slot.key) != Some(pid as u32) {
                        push(
                            AuditCheck::Slab,
                            format!("slot {s} holds {} but is indexed under id {pid}", slot.key),
                        );
                    }
                    if !self.members.contains(&slot.key) {
                        push(
                            AuditCheck::Slab,
                            format!("slot {s} peer {} is not a ring member", slot.key),
                        );
                    }
                }
            }
        }
        for &f in &slab.free {
            if slab.slots.get(f as usize).is_none_or(|o| o.is_some()) {
                push(
                    AuditCheck::Slab,
                    format!("free slot {f} still holds a peer"),
                );
            }
        }
        if live + slab.free.len() != slab.slots.len() {
            push(
                AuditCheck::Slab,
                format!(
                    "slab leak: {live} live + {} free != {} slots",
                    slab.free.len(),
                    slab.slots.len()
                ),
            );
        }
        if live != self.members.len() {
            push(
                AuditCheck::Slab,
                format!("{live} slab slots vs {} ring members", self.members.len()),
            );
        }

        // Directory: every live label's host is a live member with a
        // slab slot, and obeys the mapping rule host(n) = min{P >= n}.
        for (label, host) in self.directory.iter() {
            if !self.members.contains(host) {
                push(
                    AuditCheck::Directory,
                    format!("host {host} of {label} is not a live member"),
                );
                continue;
            }
            match self.directory.id_of(host) {
                Some(hid) if slab.contains(hid) => {}
                _ => push(
                    AuditCheck::Directory,
                    format!("host {host} of {label} has no slab slot"),
                ),
            }
            match self.host_peer(label) {
                Some(expected) if expected == host => {}
                Some(expected) => push(
                    AuditCheck::Mapping,
                    format!("{label} hosted by {host}, mapping rule says {expected}"),
                ),
                None => push(
                    AuditCheck::Mapping,
                    format!("{label} is live but the ring is empty"),
                ),
            }
        }

        // Ring links over locally hosted shards.
        for (id, shard) in self.shards() {
            let (want_pred, want_succ) = (self.ring_pred(id), self.ring_succ(id));
            if want_pred != Some(&shard.peer.pred) {
                push(
                    AuditCheck::Ring,
                    format!(
                        "{id}: pred is {}, ring order says {want_pred:?}",
                        shard.peer.pred
                    ),
                );
            }
            if want_succ != Some(&shard.peer.succ) {
                push(
                    AuditCheck::Ring,
                    format!(
                        "{id}: succ is {}, ring order says {want_succ:?}",
                        shard.peer.succ
                    ),
                );
            }
        }

        // PGCP trie invariants (Definition 1) over local shards.
        for shard in self.local_shards() {
            for node in shard.nodes.values() {
                for d in &node.data {
                    if d != &node.label {
                        push(
                            AuditCheck::Trie,
                            format!("{}: data key {d} differs from label", node.label),
                        );
                    }
                }
                if let Some(f) = &node.father {
                    match self.node(f) {
                        None => push(
                            AuditCheck::Trie,
                            format!("{}: father {f} does not resolve", node.label),
                        ),
                        Some(father) if !father.children.contains(&node.label) => push(
                            AuditCheck::Trie,
                            format!("{}: father {f} does not list it as a child", node.label),
                        ),
                        Some(_) => {}
                    }
                }
                for c in &node.children {
                    match self.node(c) {
                        None => push(
                            AuditCheck::Trie,
                            format!("{}: child {c} does not resolve", node.label),
                        ),
                        Some(child) if child.father.as_ref() != Some(&node.label) => push(
                            AuditCheck::Trie,
                            format!("{c}: father link does not point back to {}", node.label),
                        ),
                        Some(_) => {}
                    }
                    if !node.label.is_proper_prefix_of(c) {
                        push(
                            AuditCheck::Trie,
                            format!("{}: child {c} is not a proper extension", node.label),
                        );
                    }
                }
            }
        }

        // Replication records: at most k − 1 followers per label, every
        // recorded follower a live member. (Copy presence is anti-
        // entropy's transient concern; the snapshot reports it as
        // `under_replicated` rather than a violation.)
        let k = self.config.replication;
        if k > 1 {
            for (label, host) in self.directory.iter() {
                let lid = self.directory.id_of(label).expect("live label is interned");
                let fids = self.directory.follower_ids(lid);
                if fids.len() > k - 1 {
                    push(
                        AuditCheck::Replication,
                        format!("{label}: {} followers recorded, k = {k}", fids.len()),
                    );
                }
                for &f in fids {
                    let fk = self.directory.key_of(f);
                    if !self.members.contains(fk) {
                        push(
                            AuditCheck::Replication,
                            format!("{label}: follower {fk} is not a live member"),
                        );
                    }
                    if fk == host {
                        push(
                            AuditCheck::Replication,
                            format!("{label}: primary {host} recorded as its own follower"),
                        );
                    }
                }
            }
        }

        // Cache shortcuts must reference epochs the directory has
        // actually issued (stale is legal; from-the-future is not).
        for m in &self.members {
            let Some(pid) = self.directory.id_of(m) else {
                continue;
            };
            let Some(slot) = slab.get(pid) else { continue };
            for (target, sc) in slot.cache.iter_shortcuts() {
                if sc.epoch > self.directory.epoch_of(&sc.label) {
                    push(
                        AuditCheck::Cache,
                        format!(
                            "{m}: shortcut for {target} carries epoch {} > directory epoch {}",
                            sc.epoch,
                            self.directory.epoch_of(&sc.label)
                        ),
                    );
                }
            }
        }

        out
    }

    /// Estimated resident bytes of every engine component — the
    /// deterministic walk behind the snapshot's memory accounting.
    /// Length-based (Vec capacities plus fixed per-entry map
    /// estimates), so two seeded runs agree byte-for-byte; never
    /// allocates.
    pub fn bytes_estimate(&self) -> MemoryFootprint {
        use std::mem::size_of;
        let slab = &self.peers;
        let slab_bytes = slab.by_id.capacity() * size_of::<u32>()
            + slab.slots.capacity() * size_of::<Option<PeerSlot>>()
            + slab.free.capacity() * size_of::<u32>()
            // Ring membership: BTreeSet entry ≈ key + tree overhead.
            + self.members.len() * (size_of::<Key>() + 16);
        let mut shard_bytes = 0usize;
        let mut cache_bytes = 0usize;
        for slot in slab.slots.iter().flatten() {
            cache_bytes += slot.cache.bytes_estimate();
            if let Some(shard) = &slot.shard {
                shard_bytes += node_map_bytes(&shard.nodes) + node_map_bytes(&shard.replicas);
            }
        }
        MemoryFootprint {
            directory_bytes: self.directory.bytes_estimate(),
            slab_bytes,
            shard_bytes,
            cache_bytes,
        }
    }

    /// Fills `mon`'s snapshot from current engine state: per-depth
    /// occupancy, per-peer load in ring order, imbalance statistics,
    /// replication health, cache/fault counter deltas and the memory
    /// footprint. A pure read at a unit boundary (call *before*
    /// [`Engine::end_time_unit`] rolls the per-unit load counters), so
    /// health-off runs are untouched and health-on runs stay
    /// deterministic; once the monitor's buffers are warm, collection
    /// does not allocate. `faults` is the transport's cumulative
    /// counter block (`FaultStats::default()` on reliable transports).
    /// `snap.audit_violations` is reset to 0 — callers that also run
    /// [`Engine::audit`] stamp the count afterwards.
    pub fn collect_health(
        &self,
        unit: u64,
        faults: &crate::transport::FaultStats,
        mon: &mut HealthMonitor,
    ) {
        let snap = &mut mon.snap;
        snap.unit = unit;
        snap.peers = self.members.len() as u64;
        snap.nodes = self.directory.len() as u64;
        snap.audit_violations = 0;
        snap.slices = self.pump_health.slices as u64;
        snap.ring_peak = self.pump_health.ring_peak as u64;

        // Per-peer rows in ring order; `scratch_rows` maps interned
        // peer id → row index so the directory pass below can attribute
        // node counts without hashing.
        snap.per_peer.clear();
        mon.scratch_rows.clear();
        mon.scratch_rows
            .resize(self.directory.interned_len(), u32::MAX);
        for m in &self.members {
            let Some(pid) = self.directory.id_of(m) else {
                continue;
            };
            mon.scratch_rows[pid as usize] = snap.per_peer.len() as u32;
            let (replicas, used, capacity, messages) =
                match self.peers.get(pid).and_then(|s| s.shard.as_ref()) {
                    Some(shard) => {
                        let msgs = shard.nodes.values().map(|n| n.load).sum::<u64>()
                            + shard.replicas.values().map(|n| n.load).sum::<u64>();
                        (
                            shard.replicas.len() as u32,
                            shard.peer.used,
                            shard.peer.capacity,
                            msgs,
                        )
                    }
                    None => (0, 0, u32::MAX, 0),
                };
            snap.per_peer.push(PeerHealth {
                peer: pid,
                nodes: 0,
                replicas,
                used,
                capacity,
                messages,
                slice: self
                    .pump_health
                    .slice_of
                    .get(pid as usize)
                    .copied()
                    .unwrap_or(0),
            });
        }
        for (_, host) in self.directory.iter() {
            if let Some(hid) = self.directory.id_of(host) {
                if let Some(&row) = mon.scratch_rows.get(hid as usize) {
                    if row != u32::MAX {
                        snap.per_peer[row as usize].nodes += 1;
                    }
                }
            }
        }

        // Depth occupancy by walking father links (no memo map — the
        // tree is shallow and this avoids allocating). Empty when no
        // shard is hosted locally (threaded router engine).
        snap.depth_occupancy.clear();
        snap.max_depth = 0;
        for shard in self.local_shards() {
            for node in shard.nodes.values() {
                let mut d = 0usize;
                let mut cur = node.father.as_ref();
                while let Some(f) = cur {
                    d += 1;
                    cur = self.node(f).and_then(|n| n.father.as_ref());
                }
                if d >= snap.depth_occupancy.len() {
                    snap.depth_occupancy.resize(d + 1, 0);
                }
                snap.depth_occupancy[d] += 1;
                snap.max_depth = snap.max_depth.max(d as u64);
            }
        }
        snap.optimal_depth = if snap.nodes == 0 {
            0.0
        } else {
            (snap.nodes as f64 + 1.0).log2()
        };

        mon.scratch_loads.clear();
        mon.scratch_loads
            .extend(snap.per_peer.iter().map(|p| p.messages));
        let (imb, gini) = imbalance_of(&mut mon.scratch_loads);
        snap.max_over_mean = imb;
        snap.gini = gini;

        // Replication health, read-only (anti-entropy's refresh pass
        // mutates records; this one only counts): a label is under-
        // replicated when fewer than min(k − 1, peers − 1) of its
        // recorded followers are live and provably hold a copy (remote
        // follower shards can't be inspected and count as holding).
        snap.under_replicated = 0;
        let k = self.config.replication;
        if k > 1 && self.members.len() > 1 {
            let want = (k - 1).min(self.members.len() - 1);
            for (label, _) in self.directory.iter() {
                let lid = self.directory.id_of(label).expect("live label is interned");
                let live = self
                    .directory
                    .follower_ids(lid)
                    .iter()
                    .filter(|&&f| {
                        let fk = self.directory.key_of(f);
                        self.members.contains(fk)
                            && self
                                .shard(fk)
                                .map(|s| s.replicas.contains_key(label))
                                .unwrap_or(true)
                    })
                    .count();
                if live < want {
                    snap.under_replicated += 1;
                }
            }
        }

        let cs = &self.cache_stats;
        snap.cache_hits = cs.hits.saturating_sub(mon.prev_cache.hits);
        snap.cache_stale = cs.stale_hits.saturating_sub(mon.prev_cache.stale_hits);
        snap.cache_learned = cs.learned.saturating_sub(mon.prev_cache.learned);
        mon.prev_cache = cs.clone();

        let p = &mon.prev_faults;
        snap.faults = crate::transport::FaultStats {
            lost: faults.lost.saturating_sub(p.lost),
            duplicated: faults.duplicated.saturating_sub(p.duplicated),
            reordered: faults.reordered.saturating_sub(p.reordered),
            partition_dropped: faults.partition_dropped.saturating_sub(p.partition_dropped),
            duplicates_suppressed: faults
                .duplicates_suppressed
                .saturating_sub(p.duplicates_suppressed),
            retries: faults.retries.saturating_sub(p.retries),
            requests_failed: faults.requests_failed.saturating_sub(p.requests_failed),
            frames_exhausted: faults.frames_exhausted.saturating_sub(p.frames_exhausted),
        };
        mon.prev_faults = *faults;

        snap.bytes = self.bytes_estimate();
    }
}

/// Heap bytes a spilled key owns (0 for inline keys).
fn key_heap_bytes(k: &Key) -> usize {
    if k.is_inline() {
        0
    } else {
        k.len() + 16
    }
}

/// Estimated bytes of one shard-side node map (`nodes` or `replicas`):
/// a fixed per-entry B-tree estimate plus each node's child/data key
/// sets and any spilled key heap.
fn node_map_bytes(map: &BTreeMap<Key, NodeState>) -> usize {
    use std::mem::size_of;
    let mut bytes = map.len() * (size_of::<Key>() + size_of::<NodeState>() + 16);
    for (label, node) in map {
        bytes += key_heap_bytes(label) + key_heap_bytes(&node.label);
        if let Some(f) = &node.father {
            bytes += key_heap_bytes(f);
        }
        for set in [&node.children, &node.data] {
            bytes += set.len() * (size_of::<Key>() + 16);
            for c in set {
                bytes += key_heap_bytes(c);
            }
        }
    }
    bytes
}

/// Per-kind delivery counters. Free functions over the stats struct
/// alone, so the dispatch hot path can update counters while a shard
/// borrow is live.
pub(crate) fn count_node_msg(stats: &mut SystemStats, m: &NodeMsg) {
    match m {
        NodeMsg::PeerJoin { .. } => stats.join_messages += 1,
        NodeMsg::DataInsertion { .. }
        | NodeMsg::UpdateChild { .. }
        | NodeMsg::DataRemoval { .. }
        | NodeMsg::RemoveChild { .. }
        | NodeMsg::SetFather { .. } => stats.insert_messages += 1,
        NodeMsg::SearchingHost { .. } => stats.host_messages += 1,
        NodeMsg::Discovery(_) => stats.discovery_messages += 1,
    }
}

pub(crate) fn count_message(stats: &mut SystemStats, msg: &Message) {
    match msg {
        Message::Node(m) => count_node_msg(stats, m),
        Message::Peer(PeerMsg::Host { .. }) => stats.host_messages += 1,
        Message::Peer(PeerMsg::TakeOver { .. }) => stats.maintenance_messages += 1,
        Message::Peer(_) => stats.join_messages += 1,
        Message::ClientResponse(_) => {}
    }
}

/// Replication traffic (`protocol::repair`) — counted in
/// [`ReplicationStats`], never in [`SystemStats`].
fn is_replication_msg(msg: &Message) -> bool {
    matches!(
        msg,
        Message::Peer(
            PeerMsg::SyncReplicas { .. }
                | PeerMsg::Replicate { .. }
                | PeerMsg::DropReplica { .. }
                | PeerMsg::PromoteReplica { .. }
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    fn cached_engine(capacity: usize) -> Engine {
        let mut e = Engine::new(EngineConfig {
            cache_capacity: capacity,
            ..EngineConfig::default()
        });
        e.add_local_shard(k("P1"), 100);
        e.add_local_shard(k("P2"), 100);
        e
    }

    #[test]
    fn fifo_transport_preserves_order() {
        let mut t = FifoTransport::default();
        t.deliver(Envelope::to_peer(
            k("A"),
            PeerMsg::UpdateSuccessor { succ: k("B") },
        ));
        t.broadcast(
            [k("B"), k("C")]
                .into_iter()
                .map(|p| Envelope::to_peer(p, PeerMsg::UpdateSuccessor { succ: k("X") })),
        );
        let order: Vec<Address> = t.queue.iter().map(|(_, e)| e.to.clone()).collect();
        assert_eq!(
            order,
            vec![
                Address::peer(k("A")),
                Address::peer(k("B")),
                Address::peer(k("C"))
            ]
        );
        assert_eq!(t.now(), 0);
    }

    fn report(id: u64, path: Vec<Key>, results: Vec<Key>, pending: u32) -> DiscoveryOutcome {
        DiscoveryOutcome {
            request_id: id,
            satisfied: true,
            dropped: false,
            results,
            path,
            pending_children: pending,
        }
    }

    /// Satellite regression: a duplicated (re-delivered) response must
    /// not double-decrement the outstanding-branch counter — before
    /// the idempotency filter, the duplicate below finalized the
    /// request with partial results (`outstanding` underflowed to 0
    /// with one branch still in flight).
    #[test]
    fn duplicated_response_cannot_double_decrement_outstanding() {
        let mut e = cached_engine(0);
        e.set_fault_recovery(true); // duplication implies a faulty transport
        e.directory.insert(k("DG"), k("P1"));
        let (id, _env) = e
            .begin_request(&k("DG"), QueryKind::Range(k("D"), k("E")))
            .unwrap();
        // The gather root reports and fans out to two children.
        e.client_response(report(id, vec![k("DG")], Vec::new(), 2));
        // One child's report arrives twice (duplicated in transit).
        let child = report(id, vec![k("DG"), k("DGEMM")], vec![k("DGEMM")], 0);
        e.client_response(child.clone());
        e.client_response(child);
        assert_eq!(e.duplicates_suppressed, 1);
        assert!(
            e.take_finished(id).is_none() && e.retry_pending(id),
            "one branch is genuinely still outstanding"
        );
        // The true second branch finally reports: now it finalizes,
        // complete.
        e.client_response(report(id, vec![k("DG"), k("DT")], vec![k("DTRSM")], 0));
        let out = e.take_finished(id).expect("all branches accounted");
        assert!(out.satisfied);
        assert_eq!(out.results, vec![k("DGEMM"), k("DTRSM")]);
    }

    /// A retry rearms the aggregation *and* the idempotency filter:
    /// the re-delivered copies of first-attempt responses must count
    /// again on the second attempt.
    #[test]
    fn reset_request_for_retry_rearms_aggregation_and_filter() {
        let mut e = cached_engine(0);
        e.set_fault_recovery(true); // retries only exist on faulty transports
        e.directory.insert(k("DG"), k("P1"));
        let (id, env) = e
            .begin_request(&k("DG"), QueryKind::Exact(k("DGEMM")))
            .unwrap();
        assert_eq!(
            e.retry_envelope(id),
            Some(env),
            "fault recovery keeps the origin snapshot for retries"
        );
        let terminal = report(id, vec![k("DG")], vec![k("DGEMM")], 1);
        // First attempt: the node forwarded to one child whose report
        // was lost — the request is stuck outstanding.
        e.client_response(terminal.clone());
        assert!(e.retry_pending(id));
        e.reset_request_for_retry(id);
        // Second attempt re-delivers the same report plus the child's.
        e.client_response(terminal);
        e.client_response(report(id, vec![k("DG"), k("DGEMM")], Vec::new(), 0));
        assert_eq!(e.duplicates_suppressed, 0, "retry responses are fresh");
        let out = e.take_finished(id).expect("finalized after retry");
        assert!(out.satisfied);
        assert_eq!(out.results, vec![k("DGEMM")]);
    }

    /// Regression for the reordered-invalidation hazard the epoch guard
    /// exists for: an eager `InvalidateCached` broadcast that is
    /// delivered *after* the same label was re-learned at a fresher
    /// epoch must spare the fresher shortcut — while an invalidation
    /// carrying the current (or a later) epoch evicts it.
    #[test]
    fn reordered_invalidation_spares_fresher_relearned_entries() {
        let mut e = cached_engine(8);
        // A live label at some epoch, with a learned shortcut on P1.
        e.directory.insert(k("DGEMM"), k("P2"));
        e.directory.bump_epoch(&k("DGEMM"));
        let stale_epoch = e.directory.epoch_of(&k("DGEMM"));
        // The label mutates (epoch advances) and P1 re-learns it fresh.
        e.directory.bump_epoch(&k("DGEMM"));
        let fresh = cache::learned_shortcut(&e.directory, &k("DGEMM")).expect("live");
        e.cache_mut(&k("P1"))
            .unwrap()
            .insert(k("DGEMM"), fresh.clone());
        // A delayed invalidation from before the re-learn arrives last:
        // the epoch guard must spare the fresher entry.
        e.deliver_invalidation(&k("P1"), &k("DGEMM"), stale_epoch);
        assert_eq!(
            e.cache_mut(&k("P1")).unwrap().hit(&k("DGEMM")),
            Some(&fresh),
            "reordered stale invalidation must spare the re-learned shortcut"
        );
        // An invalidation at the current epoch evicts.
        let now_epoch = e.directory.epoch_of(&k("DGEMM"));
        e.deliver_invalidation(&k("P1"), &k("DGEMM"), now_epoch);
        assert_eq!(e.cache_mut(&k("P1")).unwrap().hit(&k("DGEMM")), None);
        assert_eq!(e.cache_stats.invalidations_delivered, 2);
    }

    /// The same guard exercised through the wire path every runtime
    /// shares: `InvalidateCached` envelopes delivered through
    /// [`Engine::deliver`] terminate at the engine-owned caches.
    #[test]
    fn invalidation_envelopes_terminate_at_the_engine_caches() {
        let mut e = cached_engine(8);
        e.directory.insert(k("DGEMM"), k("P2"));
        let sc = cache::learned_shortcut(&e.directory, &k("DGEMM")).expect("live");
        e.cache_mut(&k("P1")).unwrap().insert(k("DGEMM"), sc);
        let epoch = e.directory.epoch_of(&k("DGEMM"));
        let mut t = FifoTransport::default();
        let step = e
            .deliver(
                &mut t,
                Envelope::to_peer(
                    k("P1"),
                    PeerMsg::InvalidateCached {
                        label: k("DGEMM"),
                        epoch,
                    },
                ),
            )
            .unwrap();
        assert!(matches!(step, Step::Done));
        assert_eq!(e.cache_stats.invalidations_delivered, 1);
        assert_eq!(e.cache_mut(&k("P1")).unwrap().hit(&k("DGEMM")), None);
        // Unknown peers requeue, exactly like any peer-addressed frame.
        let step = e
            .deliver(
                &mut t,
                Envelope::to_peer(
                    k("NOPE"),
                    PeerMsg::InvalidateCached {
                        label: k("DGEMM"),
                        epoch,
                    },
                ),
            )
            .unwrap();
        assert!(matches!(step, Step::Requeue(_)));
    }

    #[test]
    fn membership_tracks_shards_and_caches() {
        let mut e = cached_engine(4);
        assert_eq!(e.peer_count(), 2);
        assert!(e.contains_peer(&k("P1")));
        assert_eq!(e.peer_ids(), vec![k("P1"), k("P2")]);
        let shard = e.remove_member(&k("P1")).expect("shard returned");
        assert_eq!(shard.peer.id, k("P1"));
        assert_eq!(e.peer_count(), 1);
        // Remote membership: no shard, but a cache and a broadcast slot.
        e.add_member(k("P9"));
        assert!(e.contains_peer(&k("P9")));
        assert!(e.shard(&k("P9")).is_none());
        assert!(e.remove_member(&k("P9")).is_none());
    }
}

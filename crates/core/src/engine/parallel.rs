//! The sharded multi-worker pump: discovery throughput that scales
//! with cores.
//!
//! [`ParallelPump`] processes a *batch* of discovery requests over the
//! unified [`Engine`] with `N` workers. Peers are partitioned across
//! workers round-robin in ring order (each worker owns a directory
//! shard: the [`PeerShard`]s — and therefore the capacity counters —
//! of its partition), the delivery [`Directory`] is shared read-only,
//! and every cross-shard envelope travels through crossbeam channels
//! with a **deterministic round-barrier merge**:
//!
//! 1. Each worker drains its local queue FIFO. Envelopes for nodes
//!    hosted on another worker's partition go to a per-destination
//!    outbox; locally hosted hops chain within the round.
//! 2. At the barrier every worker sends each peer worker its outbox
//!    *plus* the total number of envelopes it emitted this round, then
//!    receives from every other worker **in worker-index order**,
//!    appending to its queue. Because each worker learns every other
//!    worker's emit count, all workers compute the same global total
//!    and agree on termination (a round with zero emitted envelopes
//!    ends the pump).
//! 3. Discovery responses are logged locally tagged
//!    `(round, worker, sequence)` and folded into the engine's gather
//!    aggregation *after* the pump, sorted by that tag.
//!
//! ## Determinism rules
//!
//! * Partitioning, local processing order, merge order and the
//!   response fold are all pure functions of `(engine state, batch,
//!   worker count)` — repeated seeded runs are byte-identical.
//! * Causality is preserved without timestamps: a response generated
//!   in round `r` on worker `w` sorts before anything it causes,
//!   because an envelope sent in round `r` is processed in round `r`
//!   only later on the *same* worker (larger sequence) and otherwise
//!   in round `> r`.
//! * With unbounded peer capacity, outcomes are independent of the
//!   worker count (each request's route depends only on the tree).
//!   Under Section-4 capacity limits, which visit exhausts a peer
//!   depends on the interleaving, so outcomes are deterministic **per
//!   worker count**, like they are deterministic per runtime
//!   elsewhere.
//! * Replica failover ([`Engine`]'s capacity-refused read path) is not
//!   consulted here — a refused visit is a drop, as in the paper's
//!   capacity model.
//!
//! The batch API is intentionally restricted to discovery: joins,
//! registrations and churn mutate the directory and stay on the
//! sequential pump, which matches how the experiment harness uses the
//! system (build once, then hammer it with requests).

use super::{Engine, LookupOutcome};
use crate::directory::{Directory, FxHashMap};
use crate::error::{DlptError, Result};
use crate::key::Key;
use crate::messages::{
    Address, DiscoveryMsg, DiscoveryOutcome, Envelope, Message, NodeMsg, QueryKind,
};
use crate::obs::{merge_key, EventKind, TraceEvent};
use crate::peer::PeerShard;
use crate::protocol::{discovery, Effects};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::{BTreeMap, VecDeque};

/// A batch-mode discovery pump over `N` workers. See the module docs.
#[derive(Debug, Clone, Copy)]
pub struct ParallelPump {
    workers: usize,
    /// Test-only fault injection: index of a worker that dies on
    /// entry, exercising the failed-batch path.
    #[cfg(test)]
    sabotage: Option<usize>,
}

/// One worker's log entry: a discovery response plus its deterministic
/// position in the pump's causal order.
struct LoggedOutcome {
    round: u32,
    seq: u32,
    outcome: DiscoveryOutcome,
}

/// What one worker hands back when the pump terminates.
struct WorkerOut {
    shards: BTreeMap<Key, PeerShard>,
    log: Vec<LoggedOutcome>,
    /// Trace events produced on this worker, tagged `(round, worker,
    /// seq)` with the same counters as the response log, so the
    /// post-pump merge interleaves them exactly like the response
    /// fold. Empty unless the engine's tracer is on.
    events: Vec<TraceEvent>,
    discovery_messages: u64,
    discovery_drops: u64,
    undeliverable: u64,
    /// True when this worker aborted its rounds — it panicked (caught
    /// at the worker boundary) or a mesh peer's channel disconnected
    /// under it. One failed worker fails the whole batch.
    failed: bool,
}

/// One round's exchange payload: the sender's emitted-envelope total
/// (for global termination agreement) and the envelopes for the
/// receiving worker.
type Exchange = (usize, Vec<Envelope>);

impl ParallelPump {
    /// A pump over `workers` workers (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        ParallelPump {
            workers: workers.max(1),
            #[cfg(test)]
            sabotage: None,
        }
    }

    /// A pump whose `victim`-th worker dies on entry (test-only).
    #[cfg(test)]
    fn sabotaged(workers: usize, victim: usize) -> Self {
        ParallelPump {
            workers: workers.max(1),
            sabotage: Some(victim),
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs a batch of discovery requests (entry node, query) to
    /// completion and returns their outcomes in input order.
    ///
    /// Entry nodes must be live; route-cache consultation and shortcut
    /// learning run sequentially at batch boundaries through the same
    /// engine flow the sequential pump uses, so cached and uncached
    /// batches agree with their sequential counterparts.
    pub fn run_batch(
        &self,
        engine: &mut Engine,
        requests: Vec<(Key, QueryKind)>,
    ) -> Result<Vec<LookupOutcome>> {
        let n = self.workers.min(engine.local_shard_count().max(1));
        // Sequential prologue: register aggregation state and consult
        // the entry caches (identical flow to the sequential pump).
        let mut ids = Vec::with_capacity(requests.len());
        let mut inits = Vec::with_capacity(requests.len());
        for (entry, query) in requests {
            match engine.begin_request(&entry, query) {
                Ok((id, env)) => {
                    ids.push(id);
                    inits.push(env);
                }
                Err(e) => {
                    // Unwind the prologue: earlier registrations must
                    // not linger as zombie aggregations/learn intents.
                    for id in ids {
                        engine.gathers.release(id);
                        engine.learn.remove(&id);
                    }
                    return Err(e);
                }
            }
        }

        // Partition the shards round-robin in ring order.
        let shards = engine.take_local_shards();
        let mut owner: FxHashMap<Key, u32> = FxHashMap::default();
        let mut partitions: Vec<BTreeMap<Key, PeerShard>> =
            (0..n).map(|_| BTreeMap::new()).collect();
        for (i, (id, shard)) in shards.into_iter().enumerate() {
            owner.insert(id.clone(), (i % n) as u32);
            partitions[i % n].insert(id, shard);
        }

        // Route the initial envelopes.
        let mut queues: Vec<VecDeque<Envelope>> = (0..n).map(|_| VecDeque::new()).collect();
        let mut failed_early: Vec<DiscoveryOutcome> = Vec::new();
        for env in inits {
            match route_of(&env, &engine.directory, &owner) {
                Some(w) => queues[w as usize].push_back(env),
                None => {
                    engine.stats.undeliverable += 1;
                    failed_early.push(failed_outcome(&env));
                }
            }
        }

        // The exchange mesh: one channel per ordered worker pair.
        let mut txs: Vec<Vec<Option<Sender<Exchange>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let mut rxs: Vec<Vec<Option<Receiver<Exchange>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        for s in 0..n {
            for r in 0..n {
                if s != r {
                    let (tx, rx) = unbounded();
                    txs[s][r] = Some(tx);
                    rxs[r][s] = Some(rx);
                }
            }
        }

        let directory = &engine.directory;
        let owner_ref = &owner;
        let charge = engine.config.charge_capacity;
        let trace = engine.tracer.enabled();
        #[cfg(test)]
        let sabotage = self.sabotage;
        #[cfg(not(test))]
        let sabotage: Option<usize> = None;
        let mut outs: Vec<WorkerOut> = Vec::with_capacity(n);
        // A worker that panics is caught at its own boundary (its
        // shards come back intact); `join` can only fail if the caught
        // panic itself panicked — treated as a failed worker too.
        let mut join_failed = false;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (w, ((partition, queue), (tx_row, rx_row))) in partitions
                .drain(..)
                .zip(queues.drain(..))
                .zip(txs.drain(..).zip(rxs.drain(..)))
                .enumerate()
            {
                handles.push(scope.spawn(move || {
                    worker_loop(
                        w, partition, queue, tx_row, rx_row, directory, owner_ref, charge, trace,
                        sabotage,
                    )
                }));
            }
            for h in handles {
                match h.join() {
                    Ok(out) => outs.push(out),
                    Err(_) => join_failed = true,
                }
            }
        });

        // Reassemble the engine: shards back into one map, counters
        // merged in worker order.
        for out in &mut outs {
            engine.restore_local_shards(std::mem::take(&mut out.shards));
            engine.stats.discovery_messages += out.discovery_messages;
            engine.stats.discovery_drops += out.discovery_drops;
            engine.stats.undeliverable += out.undeliverable;
        }

        // Worker trace events merge by the same `(round, worker, seq)`
        // tag as the response fold below, so the trace interleaves
        // exactly as a sequential replay of the batch would.
        if trace {
            let mut events: Vec<TraceEvent> = Vec::new();
            for out in &mut outs {
                events.append(&mut out.events);
            }
            events.sort_by_key(merge_key);
            for ev in events {
                engine.tracer.absorb(ev);
            }
        }

        // Deterministic fold: all responses in causal (round, worker,
        // sequence) order, then the failures synthesized before launch.
        let mut tagged: Vec<(u32, u32, u32, DiscoveryOutcome)> = Vec::new();
        for (w, out) in outs.iter_mut().enumerate() {
            for e in out.log.drain(..) {
                tagged.push((e.round, w as u32, e.seq, e.outcome));
            }
        }
        tagged.sort_by_key(|t| (t.0, t.1, t.2));
        for (_, _, _, o) in tagged {
            engine.client_response(o);
        }
        for o in failed_early {
            engine.client_response(o);
        }

        // A dead worker means an unknown number of envelopes never
        // arrived: the partial responses folded above are kept (they
        // may have finalized some requests), everything still in
        // flight is purged so no zombie aggregation lingers, and the
        // caller gets an error instead of a process abort.
        if join_failed || outs.iter().any(|o| o.failed) {
            let mut completed = 0;
            for id in ids {
                if engine.take_finished(id).is_some() {
                    completed += 1;
                } else {
                    engine.gathers.release(id);
                    engine.learn.remove(&id);
                }
            }
            return Err(DlptError::WorkerFailed { completed });
        }

        let mut results = Vec::with_capacity(ids.len());
        for id in ids {
            let out = if let Some(out) = engine.take_finished(id) {
                out
            } else if engine.gathers.contains(id) {
                // Quiescence-judging engines never eagerly finalize;
                // the pump is drained here, so judging now is exactly
                // what `judge_at_quiescence` asks for.
                engine.finish_request(id)
            } else {
                return Err(DlptError::Undeliverable(format!("request {id}")));
            };
            results.push(out);
        }
        Ok(results)
    }
}

/// The worker that owns `shards`: drain local FIFO, exchange at the
/// round barrier, repeat until the mesh agrees nothing is in flight.
///
/// A panic inside the rounds is caught here, at the worker boundary,
/// so the shards survive (they live in this frame, not in the panicked
/// closure) and the batch can fail cleanly. Returning — normally or
/// after a catch — drops this worker's senders, which cascades a
/// disconnect error through every live peer's barrier `recv` within
/// one round: the whole mesh winds down instead of deadlocking on a
/// barrier that will never complete.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    me: usize,
    mut shards: BTreeMap<Key, PeerShard>,
    mut queue: VecDeque<Envelope>,
    txs: Vec<Option<Sender<Exchange>>>,
    rxs: Vec<Option<Receiver<Exchange>>>,
    directory: &Directory,
    owner: &FxHashMap<Key, u32>,
    charge: bool,
    trace: bool,
    sabotage: Option<usize>,
) -> WorkerOut {
    let mut out = WorkerOut {
        shards: BTreeMap::new(),
        log: Vec::new(),
        events: Vec::new(),
        discovery_messages: 0,
        discovery_drops: 0,
        undeliverable: 0,
        failed: false,
    };
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if sabotage == Some(me) {
            panic!("injected worker failure (test sabotage)");
        }
        run_rounds(
            me,
            &mut shards,
            &mut queue,
            &txs,
            &rxs,
            directory,
            owner,
            charge,
            trace,
            &mut out,
        );
    }));
    if caught.is_err() {
        out.failed = true;
    }
    out.shards = shards;
    out
}

/// The barrier rounds of one worker. Returns early (marking the
/// worker failed) when a mesh channel disconnects — i.e. some other
/// worker died mid-round.
#[allow(clippy::too_many_arguments)]
fn run_rounds(
    me: usize,
    shards: &mut BTreeMap<Key, PeerShard>,
    queue: &mut VecDeque<Envelope>,
    txs: &[Option<Sender<Exchange>>],
    rxs: &[Option<Receiver<Exchange>>],
    directory: &Directory,
    owner: &FxHashMap<Key, u32>,
    charge: bool,
    trace: bool,
    out: &mut WorkerOut,
) {
    let n = txs.len();
    let mut outboxes: Vec<Vec<Envelope>> = (0..n).map(|_| Vec::new()).collect();
    let mut fx = Effects::default();
    let mut round: u32 = 0;
    let mut seq: u32 = 0;
    loop {
        let mut emitted = 0usize;
        while let Some(env) = queue.pop_front() {
            emitted += process(
                me,
                env,
                shards,
                queue,
                &mut outboxes,
                directory,
                owner,
                charge,
                trace,
                &mut fx,
                out,
                round,
                &mut seq,
            );
        }
        // Round barrier: everyone sends to everyone (worker-index
        // order), then receives in the same order — the merge is a
        // pure function of the round's emissions.
        for (r, tx) in txs.iter().enumerate() {
            if let Some(tx) = tx {
                let envs = std::mem::take(&mut outboxes[r]);
                if tx.send((emitted, envs)).is_err() {
                    out.failed = true;
                    return;
                }
            }
        }
        let mut global = emitted;
        for rx in rxs.iter().flatten() {
            match rx.recv() {
                Ok((their_emitted, envs)) => {
                    global += their_emitted;
                    queue.extend(envs);
                }
                Err(_) => {
                    out.failed = true;
                    return;
                }
            }
        }
        round += 1;
        if global == 0 {
            break;
        }
    }
}

/// Delivers one envelope on this worker (or forwards it). Returns how
/// many envelopes it emitted (local chains + outbox entries), the
/// quantity the termination barrier sums.
#[allow(clippy::too_many_arguments)]
fn process(
    me: usize,
    env: Envelope,
    shards: &mut BTreeMap<Key, PeerShard>,
    queue: &mut VecDeque<Envelope>,
    outboxes: &mut [Vec<Envelope>],
    directory: &Directory,
    owner: &FxHashMap<Key, u32>,
    charge: bool,
    trace: bool,
    fx: &mut Effects,
    out: &mut WorkerOut,
    round: u32,
    seq: &mut u32,
) -> usize {
    match &env.to {
        Address::Client(_) => {
            if let Message::ClientResponse(o) = env.msg {
                out.log.push(LoggedOutcome {
                    round,
                    seq: next(seq),
                    outcome: o,
                });
            }
            return 0;
        }
        Address::Node(_) => {}
        Address::Peer(_) => {
            // Discovery batches carry no peer traffic; a stray frame is
            // dropped (counted) rather than wedging the barrier.
            out.undeliverable += 1;
            return 0;
        }
    }
    let Address::Node(label) = &env.to else {
        unreachable!("matched above")
    };
    let Some(host) = directory.host_of(label) else {
        // Tree mutated since the batch started — not supported; fail
        // the request rather than deadlocking on a requeue.
        out.undeliverable += 1;
        out.log.push(LoggedOutcome {
            round,
            seq: next(seq),
            outcome: failed_outcome(&env),
        });
        return 0;
    };
    let w = *owner.get(host).expect("directory hosts are members");
    if w as usize != me {
        outboxes[w as usize].push(env);
        return 1;
    }
    let shard = shards.get_mut(host).expect("owned partition");
    let Envelope { to, msg } = env;
    let Address::Node(label) = to else {
        unreachable!("checked above")
    };
    let Message::Node(NodeMsg::Discovery(m)) = msg else {
        out.undeliverable += 1;
        return 0;
    };
    // Same gate as the sequential engine dispatch, minus requeues
    // (the directory is frozen for the batch) and replica failover
    // (see the module docs).
    let (req, hops) = (m.request_id, m.path.len());
    match discovery::deliver_visit(shard, &label, m, charge, fx) {
        discovery::VisitGate::Missing(m) => {
            out.undeliverable += 1;
            out.log.push(LoggedOutcome {
                round,
                seq: next(seq),
                outcome: failed_discovery(&label, m),
            });
            return 0;
        }
        discovery::VisitGate::Dropped(m) => {
            out.discovery_drops += 1;
            let mut path = m.path;
            path.push(label.clone());
            if trace {
                let (lid, hid) = directory.resolve(&label).unwrap_or((u32::MAX, u32::MAX));
                out.events.push(TraceEvent {
                    request: req as u32,
                    a: lid,
                    b: hid,
                    round,
                    seq: next(seq),
                    kind: EventKind::Drop,
                    flags: 0,
                    worker: me as u16,
                    depth: path.len().min(u16::MAX as usize) as u16,
                });
            }
            out.log.push(LoggedOutcome {
                round,
                seq: next(seq),
                outcome: DiscoveryOutcome {
                    request_id: m.request_id,
                    satisfied: false,
                    dropped: true,
                    results: Vec::new(),
                    path,
                    pending_children: 0,
                },
            });
            return 0;
        }
        discovery::VisitGate::Delivered => {}
    }
    out.discovery_messages += 1;
    if trace {
        let (lid, hid) = directory.resolve(&label).unwrap_or((u32::MAX, u32::MAX));
        out.events.push(TraceEvent {
            request: req as u32,
            a: lid,
            b: hid,
            round,
            seq: next(seq),
            kind: EventKind::Hop,
            flags: 0,
            worker: me as u16,
            depth: hops.min(u16::MAX as usize) as u16,
        });
    }
    debug_assert!(
        fx.relocated.is_empty() && fx.removed.is_empty(),
        "discovery never mutates the tree"
    );
    fx.relocated.clear();
    fx.removed.clear();
    let mut emitted = 0usize;
    for env in fx.out.drain(..) {
        match &env.to {
            Address::Client(_) => {
                if let Message::ClientResponse(o) = env.msg {
                    out.log.push(LoggedOutcome {
                        round,
                        seq: next(seq),
                        outcome: o,
                    });
                }
            }
            Address::Node(l) => match directory.host_of(l).and_then(|h| owner.get(h)) {
                Some(&w) if w as usize == me => {
                    queue.push_back(env);
                    emitted += 1;
                }
                Some(&w) => {
                    outboxes[w as usize].push(env);
                    emitted += 1;
                }
                None => {
                    out.undeliverable += 1;
                    out.log.push(LoggedOutcome {
                        round,
                        seq: next(seq),
                        outcome: failed_outcome(&env),
                    });
                }
            },
            Address::Peer(_) => out.undeliverable += 1,
        }
    }
    emitted
}

fn next(seq: &mut u32) -> u32 {
    let s = *seq;
    *seq += 1;
    s
}

/// The worker a node-addressed envelope belongs to, if resolvable.
fn route_of(env: &Envelope, directory: &Directory, owner: &FxHashMap<Key, u32>) -> Option<u32> {
    match &env.to {
        Address::Node(label) => directory.host_of(label).and_then(|h| owner.get(h)).copied(),
        _ => None,
    }
}

/// A failed response resolving the request of an undeliverable
/// discovery envelope (mirrors the sequential requeue-budget path).
fn failed_outcome(env: &Envelope) -> DiscoveryOutcome {
    let (id, path) = match &env.msg {
        Message::Node(NodeMsg::Discovery(m)) => (m.request_id, m.path.clone()),
        _ => (0, Vec::new()),
    };
    DiscoveryOutcome {
        request_id: id,
        satisfied: false,
        dropped: true,
        results: Vec::new(),
        path,
        pending_children: 0,
    }
}

fn failed_discovery(label: &Key, m: DiscoveryMsg) -> DiscoveryOutcome {
    let mut path = m.path;
    path.push(label.clone());
    DiscoveryOutcome {
        request_id: m.request_id,
        satisfied: false,
        dropped: true,
        results: Vec::new(),
        path,
        pending_children: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::DlptSystem;

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    fn built_system(seed: u64, capacity: u32) -> DlptSystem {
        let mut sys = DlptSystem::builder()
            .seed(seed)
            .peer_id_len(10)
            .default_capacity(capacity)
            .bootstrap_peers(10)
            .build();
        for i in 0..30 {
            sys.insert_data(k(&format!("SVC{i:02}"))).unwrap();
        }
        for name in ["DGEMM", "DGEMV", "DTRSM", "S3L_fft", "S3L_sort"] {
            sys.insert_data(k(name)).unwrap();
        }
        sys.end_time_unit();
        sys
    }

    fn query_mix() -> Vec<QueryKind> {
        let mut qs = Vec::new();
        for i in 0..40 {
            qs.push(QueryKind::Exact(k(&format!("SVC{:02}", i % 30))));
        }
        qs.push(QueryKind::Exact(k("MISSING")));
        qs.push(QueryKind::Complete(k("S3L")));
        qs.push(QueryKind::Range(k("D"), k("E")));
        qs
    }

    #[test]
    fn parallel_batch_matches_sequential_requests() {
        let mut seq_sys = built_system(42, u32::MAX >> 1);
        let mut par_sys = built_system(42, u32::MAX >> 1);
        let seq_out: Vec<_> = query_mix()
            .into_iter()
            .map(|q| seq_sys.request(q).unwrap())
            .collect();
        let par_out = par_sys.discover_batch(query_mix(), 4).unwrap();
        assert_eq!(seq_out.len(), par_out.len());
        for (a, b) in seq_out.iter().zip(&par_out) {
            assert_eq!(a.satisfied, b.satisfied);
            assert_eq!(a.found, b.found);
            assert_eq!(a.dropped, b.dropped);
            assert_eq!(a.results, b.results);
        }
        // Exact queries have a single route: full outcome equality.
        for (a, b) in seq_out.iter().zip(&par_out).take(40) {
            assert_eq!(a, b);
        }
        assert_eq!(
            seq_sys.stats.discovery_messages,
            par_sys.stats.discovery_messages
        );
    }

    #[test]
    fn seeded_parallel_runs_are_byte_identical() {
        let run = || {
            let mut sys = built_system(7, u32::MAX >> 1);
            let out = sys.discover_batch(query_mix(), 4).unwrap();
            (out, sys.stats.clone())
        };
        let (out_a, stats_a) = run();
        let (out_b, stats_b) = run();
        assert_eq!(out_a, out_b);
        assert_eq!(stats_a, stats_b);
    }

    #[test]
    fn worker_count_does_not_change_results_without_capacity_pressure() {
        let reference = {
            let mut sys = built_system(11, u32::MAX >> 1);
            sys.discover_batch(query_mix(), 1).unwrap()
        };
        for workers in [2, 3, 4, 8] {
            let mut sys = built_system(11, u32::MAX >> 1);
            let got = sys.discover_batch(query_mix(), workers).unwrap();
            assert_eq!(reference.len(), got.len(), "workers={workers}");
            for (a, b) in reference.iter().zip(&got) {
                assert_eq!(a.satisfied, b.satisfied, "workers={workers}");
                assert_eq!(a.results, b.results, "workers={workers}");
            }
        }
    }

    #[test]
    fn capacity_pressure_is_deterministic_per_worker_count() {
        let run = || {
            let mut sys = built_system(13, 40);
            let out = sys.discover_batch(query_mix(), 4).unwrap();
            (out, sys.stats.clone())
        };
        let (out_a, stats_a) = run();
        let (out_b, stats_b) = run();
        assert_eq!(out_a, out_b);
        assert_eq!(stats_a, stats_b);
        assert!(
            stats_a.discovery_drops > 0,
            "capacity 6 must refuse some visits: {stats_a:?}"
        );
        assert!(out_a.iter().any(|o| o.dropped), "drops surface to clients");
        assert!(
            out_a.iter().any(|o| o.satisfied),
            "pressure must not refuse everything"
        );
    }

    #[test]
    fn cached_batches_learn_and_hit_through_the_shared_flow() {
        let mut sys = DlptSystem::builder()
            .seed(23)
            .peer_id_len(10)
            .cache_capacity(64)
            .bootstrap_peers(6)
            .build();
        for name in ["DGEMM", "DGEMV", "DTRSM", "S3L_fft"] {
            sys.insert_data(k(name)).unwrap();
        }
        let hot: Vec<QueryKind> = (0..64).map(|_| QueryKind::Exact(k("DGEMM"))).collect();
        let out = sys.discover_batch(hot.clone(), 4).unwrap();
        assert!(out.iter().all(|o| o.satisfied));
        assert!(sys.cache_stats.learned > 0, "{:?}", sys.cache_stats);
        let out = sys.discover_batch(hot, 4).unwrap();
        assert!(out.iter().all(|o| o.satisfied));
        assert!(out.iter().all(|o| o.results == vec![k("DGEMM")]));
        assert!(sys.cache_stats.hits > 0, "{:?}", sys.cache_stats);
    }

    /// Regression: the pump must also serve engines configured like
    /// the asynchronous runtimes (`judge_at_quiescence`), which never
    /// eagerly finalize — the epilogue judges their still-registered
    /// gathers once the mesh is drained instead of erroring out.
    #[test]
    fn quiescence_judging_engines_run_batches_and_learn_shortcuts() {
        use crate::engine::{Engine, EngineConfig};
        use crate::node::NodeState;
        let mut e = Engine::new(EngineConfig {
            judge_at_quiescence: true,
            cache_capacity: 16,
            ..EngineConfig::default()
        });
        e.add_local_shard(k("PAAA"), 100);
        e.add_local_shard(k("ZAAA"), 100);
        let mut node = NodeState::new(k("DGEMM"));
        node.data.insert(k("DGEMM"));
        let host = e.host_peer(&k("DGEMM")).unwrap().clone();
        e.shard_mut(&host).unwrap().install(node);
        e.directory.insert(k("DGEMM"), host);
        let out = ParallelPump::new(2)
            .run_batch(&mut e, vec![(k("DGEMM"), QueryKind::Exact(k("DGEMM")))])
            .unwrap();
        assert!(out[0].satisfied);
        assert_eq!(out[0].results, vec![k("DGEMM")]);
        // The satisfied exact query must teach the entry peer's cache
        // through the quiescence-judging epilogue (`finish_request`),
        // not silently drop the learn intent.
        assert_eq!(e.cache_stats.learned, 1, "{:?}", e.cache_stats);
        let out = ParallelPump::new(2)
            .run_batch(&mut e, vec![(k("DGEMM"), QueryKind::Exact(k("DGEMM")))])
            .unwrap();
        assert!(out[0].satisfied);
        assert_eq!(e.cache_stats.hits, 1, "{:?}", e.cache_stats);
    }

    /// Satellite regression: one worker dying mid-round used to
    /// deadlock-or-panic the whole process at the barrier
    /// `expect("receiver alive")` / `expect("sender alive")` pair. It
    /// must now fail the batch with an error, keep every shard, purge
    /// the batch's in-flight aggregation state, and leave the engine
    /// fully usable.
    #[test]
    fn a_dying_worker_fails_the_batch_without_poisoning_the_engine() {
        let mut sys = built_system(17, u32::MAX >> 1);
        let nodes_before = sys.node_labels().len();
        let peers_before = sys.peer_ids().len();
        let entry = sys.node_labels().into_iter().next().unwrap();
        let requests: Vec<(Key, QueryKind)> = query_mix()
            .into_iter()
            .map(|q| (entry.clone(), q))
            .collect();
        let err = ParallelPump::sabotaged(4, 2)
            .run_batch(&mut sys, requests.clone())
            .unwrap_err();
        assert!(
            matches!(err, DlptError::WorkerFailed { .. }),
            "expected WorkerFailed, got {err:?}"
        );
        // No shard was lost and no zombie aggregation lingers.
        assert_eq!(sys.node_labels().len(), nodes_before);
        assert_eq!(sys.peer_ids().len(), peers_before);
        assert!(sys.gathers.is_empty(), "batch state must be purged");
        // The engine is still fully serviceable, batch and sequential.
        let out = ParallelPump::new(4).run_batch(&mut sys, requests).unwrap();
        assert!(out.iter().any(|o| o.satisfied));
        let out = sys.request(QueryKind::Exact(k("SVC00"))).unwrap();
        assert!(out.satisfied);
    }

    #[test]
    fn more_workers_than_peers_clamps_cleanly() {
        let mut sys = DlptSystem::builder()
            .seed(3)
            .peer_id_len(8)
            .bootstrap_peers(2)
            .build();
        sys.insert_data(k("DGEMM")).unwrap();
        let out = sys
            .discover_batch(vec![QueryKind::Exact(k("DGEMM"))], 16)
            .unwrap();
        assert!(out[0].satisfied);
    }
}

//! The shared-nothing multi-worker pump: discovery throughput that
//! scales with cores.
//!
//! [`ParallelPump`] processes a *batch* of discovery requests over the
//! unified [`Engine`] with `N` workers. The batch is **partitioned,
//! not shared**:
//!
//! * The interned [`Directory`]'s peer population is split into
//!   per-worker **slices**: contiguous runs of the ring order, each
//!   worker *owning* (holding by value) the [`PeerShard`]s — and
//!   therefore the capacity counters — of its run. Ring-adjacent peers
//!   land on the same worker, so tree hops between neighbours stay
//!   in-slice.
//! * Routing runs against a **frozen snapshot**: every worker carries
//!   its own copy of the `label-id → host-id → (worker, slot)` tables
//!   (`RouteTable`), so a delivery costs one interner hash plus
//!   three array reads — no shared map is walked per hop. Only the
//!   interner itself (`Key → u32`, immutable for the batch) is read
//!   through a shared reference.
//! * Cross-slice envelopes travel through **bounded SPSC rings**
//!   (`Ring`), one per ordered worker pair — hand-rolled, since the
//!   vendored crossbeam subset only ships unbounded MPMC channels.
//! * There is **no round barrier**. Quiescence is agreed by
//!   Chandy–Lamport-style *credits*: after draining epoch `e`, worker
//!   `s` pushes every peer `r` a `Lane::Credit` carrying how many
//!   envelopes it sent `r` this epoch and its global emit total.
//!   A worker entering epoch `e + 1` consumes each sender's epoch-`e`
//!   batch as soon as that sender's credit arrives — it stalls only
//!   when it genuinely has no deliverable envelopes — and the summed
//!   totals give every worker the same termination verdict (a global
//!   total of zero ends the pump). Because rings are FIFO, a credit
//!   proves its epoch's envelopes have already arrived.
//!
//! ## Determinism rules
//!
//! * Responses are logged worker-locally tagged `(round, worker,
//!   sequence)` — the worker's log *is* its gather buffer — and folded
//!   into the engine's aggregation after the pump, sorted by that tag.
//!   "Round" is the credit **epoch**: worker `w` processes, in epoch
//!   `e`, exactly the envelopes the old barrier design would have
//!   handed it in round `e` (sender batches in worker-index order,
//!   then its own chained hops in generation order), so the fold is
//!   byte-identical to the round-barrier pump's and, with it, the
//!   golden fingerprint and the `pump_fingerprint` self-check.
//! * Partitioning, per-epoch processing order and the response fold
//!   are pure functions of `(engine state, batch, worker count)` —
//!   thread scheduling can change *when* a worker runs, never *what*
//!   it computes. Repeated seeded runs are byte-identical.
//! * Causality is preserved without timestamps: an envelope sent in
//!   epoch `e` is consumed in epoch `e + 1` (or later on the same
//!   worker at a larger sequence), so a response sorts before anything
//!   it causes.
//! * With unbounded peer capacity, outcomes are independent of the
//!   worker count (each request's route depends only on the tree).
//!   Under Section-4 capacity limits, which visit exhausts a peer
//!   depends on the slice interleaving, so outcomes are deterministic
//!   **per worker count**, like they are deterministic per runtime
//!   elsewhere.
//! * Replica failover ([`Engine`]'s capacity-refused read path) is not
//!   consulted here — a refused visit is a drop, as in the paper's
//!   capacity model.
//!
//! ## Ownership and handoff
//!
//! A slice owns its shards outright for the batch; the directory is
//! frozen (the pump holds `&Directory`), so no ownership moves while
//! workers run. Between batches, ownership moves — balancer migration,
//! crash promotion — go through [`Directory::handoff`], which restates
//! the transfer as an explicit record in interned-id space instead of
//! a silent mutation; the next batch's slices are carved from the
//! post-handoff directory. The batch API is intentionally restricted
//! to discovery: joins, registrations and churn stay on the sequential
//! pump, which matches how the experiment harness uses the system
//! (build once, then hammer it with requests).

use super::{Engine, LookupOutcome};
use crate::directory::Directory;
use crate::error::{DlptError, Result};
use crate::key::Key;
use crate::messages::{
    Address, DiscoveryMsg, DiscoveryOutcome, Envelope, Message, NodeMsg, QueryKind,
};
use crate::obs::{merge_key, EventKind, TraceEvent};
use crate::peer::PeerShard;
use crate::protocol::{discovery, Effects};
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// How long a worker parks waiting for a credit before re-checking.
/// Unparks do the real waking (a credit send unparks its receiver);
/// the timeout only bounds the abort-flag latency after a sibling
/// panic and the one store/load race the parked-flag protocol leaves
/// open, so it can be generous — a short timeout would have every
/// blocked worker waking thousands of times a second, stealing the
/// very core the productive worker needs.
const PARK_TIMEOUT: Duration = Duration::from_millis(2);

/// A batch-mode discovery pump over `N` workers. See the module docs.
#[derive(Debug, Clone, Copy)]
pub struct ParallelPump {
    workers: usize,
    /// Test-only fault injection: index of a worker that dies on
    /// entry, exercising the failed-batch path.
    #[cfg(test)]
    sabotage: Option<usize>,
}

// ---------------------------------------------------------------------
// The bounded SPSC ring
// ---------------------------------------------------------------------

/// Ring capacity (a power of two). Deep enough that backpressure is
/// rare on discovery fan-outs; shallow enough that `N²` rings stay a
/// few megabytes. `push` handles overflow by blocking-with-drain, so
/// the constant is a throughput knob, not a correctness bound.
const RING_CAP: usize = 1024;

/// Hand-rolled cache-line padding (the vendored crossbeam subset has
/// no `CachePadded`): keeps a ring's producer and consumer cursors on
/// different lines so SPSC traffic never false-shares.
#[repr(align(64))]
#[derive(Default)]
struct CachePadded<T>(T);

/// The worker roster shared across the mesh: each worker's thread
/// handle (registered before the epochs start, for unparking) and its
/// parked flag. A worker raises its flag before parking in
/// [`Mesh::wait_credit`] and lowers it on wake; senders only pay the
/// unpark syscall when the flag is up.
struct Roster {
    threads: Vec<OnceLock<std::thread::Thread>>,
    parked: Vec<CachePadded<AtomicBool>>,
}

impl Roster {
    fn new(n: usize) -> Self {
        Roster {
            threads: (0..n).map(|_| OnceLock::new()).collect(),
            parked: (0..n).map(|_| CachePadded::default()).collect(),
        }
    }
}

/// What flows between an ordered worker pair: envelopes, then — once
/// per epoch — the credit that closes the epoch over this lane.
enum Lane {
    Env(Envelope),
    /// Epoch-close credit from the sending worker: `sent` envelopes
    /// preceded it on this ring this epoch, and the sender's global
    /// emit total this epoch was `total` (for termination agreement).
    Credit {
        epoch: u32,
        sent: u32,
        total: u64,
    },
}

/// A bounded single-producer/single-consumer ring of [`Lane`]s between
/// one ordered worker pair. Cursors are monotone (`slot = cursor &
/// mask`); the producer owns `tail`, the consumer owns `head`, and the
/// release/acquire pair on each makes the slot contents visible to the
/// other side.
struct Ring {
    buf: Box<[UnsafeCell<MaybeUninit<Lane>>]>,
    /// Monotone pop cursor; written by the consumer only.
    head: CachePadded<AtomicUsize>,
    /// Monotone push cursor; written by the producer only.
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: a slot is written by the single producer strictly before the
// `tail` release-store that publishes it, and read by the single
// consumer strictly before the `head` release-store that retires it —
// the acquire loads on the opposite cursor order the accesses, so no
// slot is ever touched by both sides at once. The pump upholds the
// single-producer/single-consumer discipline by construction: ring
// `s·n + r` is pushed only by worker `s` and popped only by worker `r`.
unsafe impl Sync for Ring {}

impl Ring {
    fn new(capacity: usize) -> Self {
        debug_assert!(capacity.is_power_of_two());
        Ring {
            buf: (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            head: CachePadded::default(),
            tail: CachePadded::default(),
        }
    }

    /// Pushes one lane; hands it back when the ring is full. On
    /// success returns the ring depth *after* the push (for peak
    /// tracking).
    ///
    /// # Safety
    ///
    /// Caller must be this ring's single producer.
    // The Err payload *is* the rejected lane — handing it back by
    // value is the point, not an oversized error type.
    #[allow(clippy::result_large_err)]
    unsafe fn push(&self, lane: Lane) -> std::result::Result<usize, Lane> {
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Acquire);
        let depth = tail - head;
        if depth == self.buf.len() {
            return Err(lane);
        }
        // SAFETY: `tail - head < len`, so this slot is retired (the
        // consumer's release-store on `head` happened-before our
        // acquire load) and only the producer touches it now.
        unsafe { (*self.buf[tail & (self.buf.len() - 1)].get()).write(lane) };
        self.tail.0.store(tail + 1, Ordering::Release);
        Ok(depth + 1)
    }

    /// Pops the oldest lane, or `None` when the ring is empty.
    ///
    /// # Safety
    ///
    /// Caller must be this ring's single consumer.
    unsafe fn pop(&self) -> Option<Lane> {
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: `head < tail`, so the slot was published by the
        // producer's release-store on `tail` and belongs to the
        // consumer until the `head` store below retires it.
        let lane = unsafe { (*self.buf[head & (self.buf.len() - 1)].get()).assume_init_read() };
        self.head.0.store(head + 1, Ordering::Release);
        Some(lane)
    }
}

impl Drop for Ring {
    fn drop(&mut self) {
        // A failed batch can leave lanes in flight; drop them so their
        // envelopes (and the keys inside) are released.
        let head = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        let mask = self.buf.len() - 1;
        for i in head..tail {
            // SAFETY: `&mut self` — no concurrent side exists; slots
            // in `[head, tail)` are initialized and not yet consumed.
            unsafe { self.buf[i & mask].get_mut().assume_init_drop() };
        }
    }
}

// ---------------------------------------------------------------------
// Slices and routing
// ---------------------------------------------------------------------

/// Sentinel: label id with no live host in the snapshot.
const NONE_HOST: u32 = u32::MAX;
/// Sentinel: peer id owned by no worker (not a local shard).
const NONE_WORKER: u16 = u16::MAX;

/// One worker's owned partition of the directory: a contiguous run of
/// the ring order. `RouteTable::slot_of` indexes into `shards`.
#[derive(Default)]
struct Slice {
    /// Interned peer ids of the owned shards, in ring order.
    ids: Vec<u32>,
    /// The owned shards, parallel to `ids`.
    shards: Vec<PeerShard>,
}

/// The frozen per-batch routing snapshot, one owned copy per worker:
/// `hosts` mirrors the directory's `label-id → host-id` table at batch
/// start, `worker_of`/`slot_of` map a host id to its owning slice and
/// the shard's index inside it.
#[derive(Clone)]
struct RouteTable {
    hosts: Vec<u32>,
    worker_of: Vec<u16>,
    slot_of: Vec<u32>,
}

impl RouteTable {
    /// Resolves a node label to `(owning worker, slot)` — one interner
    /// hash, three array reads. `None` when the label is unknown, not
    /// live at snapshot time, or hosted on no local shard.
    #[inline]
    fn route(&self, directory: &Directory, label: &Key) -> Option<(u16, u32)> {
        let lid = directory.id_of(label)?;
        let hid = *self.hosts.get(lid as usize)?;
        if hid == NONE_HOST {
            return None;
        }
        let w = self.worker_of[hid as usize];
        if w == NONE_WORKER {
            return None;
        }
        Some((w, self.slot_of[hid as usize]))
    }
}

// ---------------------------------------------------------------------
// Worker-side state
// ---------------------------------------------------------------------

/// One worker's log entry: a discovery response plus its deterministic
/// position in the pump's causal order.
struct LoggedOutcome {
    round: u32,
    seq: u32,
    outcome: DiscoveryOutcome,
}

/// What one worker hands back when the pump terminates.
struct WorkerOut {
    /// This worker's index — outs are reassembled by this tag so a
    /// lost sibling can never misattribute the fold.
    worker: u32,
    /// The owned slice, handed back for re-attachment (survives a
    /// caught panic: it lives in the worker's own frame).
    slice: Slice,
    log: Vec<LoggedOutcome>,
    /// Trace events produced on this worker, tagged `(round, worker,
    /// seq)` with the same counters as the response log, so the
    /// post-pump merge interleaves them exactly like the response
    /// fold. Empty unless the engine's tracer is on.
    events: Vec<TraceEvent>,
    discovery_messages: u64,
    discovery_drops: u64,
    undeliverable: u64,
    /// Deepest occupancy this worker observed pushing into any of its
    /// outbound rings (health observability).
    ring_peak: u32,
    /// True when this worker aborted — it panicked (caught at the
    /// worker boundary) or saw the shared failure flag while waiting.
    /// One failed worker fails the whole batch.
    failed: bool,
}

/// Buffered arrivals from one sender, drained off the ring while this
/// worker waits (so a blocked sender always finds room): envelopes in
/// FIFO order plus the epoch-close credits `(epoch, sent, total)`.
#[derive(Default)]
struct Inbox {
    envs: VecDeque<Envelope>,
    credits: VecDeque<(u32, u32, u64)>,
}

/// One worker's view of the ring mesh: its outbound rings (`txs[r]` is
/// `me → r`), inbound rings (`rxs[s]` is `s → me`), the per-sender
/// inboxes, and the per-receiver sent counters the next credit will
/// carry. Both wait loops drain *every* inbound ring, which is what
/// makes blocking pushes deadlock-free: a stalled worker always keeps
/// consuming.
struct Mesh<'a> {
    me: usize,
    txs: Vec<&'a Ring>,
    rxs: Vec<&'a Ring>,
    inboxes: Vec<Inbox>,
    sent: Vec<u32>,
    failed: &'a AtomicBool,
    /// Every worker's thread handle and parked flag, registered before
    /// the epochs start: a credit send unparks its receiver, so a
    /// worker blocked on [`Mesh::wait_credit`] sits off the runqueue
    /// instead of yield-spinning — on a single core that lets the
    /// worker with actual work run uninterrupted.
    roster: &'a Roster,
    ring_peak: u32,
}

impl<'a> Mesh<'a> {
    fn new(
        me: usize,
        txs: Vec<&'a Ring>,
        rxs: Vec<&'a Ring>,
        failed: &'a AtomicBool,
        roster: &'a Roster,
    ) -> Self {
        let n = txs.len();
        Mesh {
            me,
            txs,
            rxs,
            inboxes: (0..n).map(|_| Inbox::default()).collect(),
            sent: vec![0; n],
            failed,
            roster,
            ring_peak: 0,
        }
    }

    /// Wakes worker `r` if it is parked in [`Mesh::wait_credit`]. The
    /// parked flag keeps the futex syscall off the sender's critical
    /// path whenever the receiver is running; the SeqCst load pairs
    /// with the receiver's SeqCst flag store so a receiver that missed
    /// this push sees our wake (the park timeout backstops the one
    /// remaining interleaving).
    fn unpark(&self, r: usize) {
        if self.roster.parked[r].0.load(Ordering::SeqCst) {
            if let Some(t) = self.roster.threads[r].get() {
                t.unpark();
            }
        }
    }

    /// Moves everything currently visible on the inbound rings into
    /// the per-sender inboxes.
    fn drain_rings(&mut self) {
        for (s, rx) in self.rxs.iter().enumerate() {
            if s == self.me {
                continue;
            }
            // SAFETY: worker `me` is ring `s → me`'s single consumer.
            while let Some(lane) = unsafe { rx.pop() } {
                match lane {
                    Lane::Env(env) => self.inboxes[s].envs.push_back(env),
                    Lane::Credit { epoch, sent, total } => {
                        self.inboxes[s].credits.push_back((epoch, sent, total))
                    }
                }
            }
        }
    }

    /// Pushes one lane to worker `r`, draining own arrivals while the
    /// ring is full. Returns false when the mesh died underneath
    /// (shared failure flag) — the caller must abort its batch.
    fn push(&mut self, r: usize, mut lane: Lane) -> bool {
        loop {
            // SAFETY: worker `me` is ring `me → r`'s single producer.
            match unsafe { self.txs[r].push(lane) } {
                Ok(depth) => {
                    self.ring_peak = self.ring_peak.max(depth as u32);
                    return true;
                }
                Err(back) => {
                    lane = back;
                    if self.failed.load(Ordering::Relaxed) {
                        return false;
                    }
                    // The receiver may be parked on a credit; wake it
                    // so it can drain the full ring.
                    self.unpark(r);
                    self.drain_rings();
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Sends an envelope to worker `r`, counting it toward the next
    /// credit.
    fn send_env(&mut self, r: usize, env: Envelope) -> bool {
        self.sent[r] += 1;
        self.push(r, Lane::Env(env))
    }

    /// Closes `epoch` toward worker `r`: emits the credit carrying the
    /// per-pair sent count (reset here) and this worker's global emit
    /// total for the epoch.
    fn send_credit(&mut self, r: usize, epoch: u32, total: u64) -> bool {
        let sent = std::mem::take(&mut self.sent[r]);
        let ok = self.push(r, Lane::Credit { epoch, sent, total });
        // The credit is what unblocks the receiver's epoch; wake it.
        self.unpark(r);
        ok
    }

    /// Waits for sender `s`'s credit closing `epoch`, draining
    /// arrivals meanwhile. `None` when the mesh died.
    ///
    /// Short waits resolve with a yield — on a loaded single core the
    /// yield hands the CPU straight to the producer, and a park/unpark
    /// cycle would put two futex syscalls on the critical path. Only a
    /// wait that survives the yields parks the thread off the
    /// runqueue.
    fn wait_credit(&mut self, s: usize, epoch: u32) -> Option<(u32, u64)> {
        let mut spins = 0u32;
        loop {
            if let Some(&(e, sent, total)) = self.inboxes[s].credits.front() {
                debug_assert_eq!(e, epoch, "credits arrive in epoch order");
                self.inboxes[s].credits.pop_front();
                return Some((sent, total));
            }
            if self.failed.load(Ordering::Relaxed) {
                return None;
            }
            self.drain_rings();
            if self.inboxes[s].credits.front().is_some() {
                continue;
            }
            if spins < 2 {
                spins += 1;
                std::thread::yield_now();
                continue;
            }
            // Raise the parked flag (SeqCst, pairing with the sender's
            // load in `unpark`), then re-drain: a credit pushed before
            // the sender could see our flag is caught here, so the
            // only wake we can miss is covered by the park timeout.
            self.roster.parked[self.me].0.store(true, Ordering::SeqCst);
            self.drain_rings();
            if self.inboxes[s].credits.front().is_none() {
                std::thread::park_timeout(PARK_TIMEOUT);
            }
            self.roster.parked[self.me]
                .0
                .store(false, Ordering::Relaxed);
        }
    }

    /// The next buffered envelope from sender `s`. Only called under a
    /// consumed credit, whose FIFO position proves the envelope is
    /// already buffered.
    fn take_env(&mut self, s: usize) -> Envelope {
        self.inboxes[s]
            .envs
            .pop_front()
            .expect("ring FIFO: an epoch's envelopes precede its credit")
    }
}

impl ParallelPump {
    /// A pump over `workers` workers (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        ParallelPump {
            workers: workers.max(1),
            #[cfg(test)]
            sabotage: None,
        }
    }

    /// A pump whose `victim`-th worker dies on entry (test-only).
    #[cfg(test)]
    fn sabotaged(workers: usize, victim: usize) -> Self {
        ParallelPump {
            workers: workers.max(1),
            sabotage: Some(victim),
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs a batch of discovery requests (entry node, query) to
    /// completion and returns their outcomes in input order.
    ///
    /// Entry nodes must be live; route-cache consultation and shortcut
    /// learning run sequentially at batch boundaries through the same
    /// engine flow the sequential pump uses — the cache-ownership rule
    /// (route caches are engine state keyed by the entry peer) holds,
    /// so cached and uncached batches agree with their sequential
    /// counterparts.
    pub fn run_batch(
        &self,
        engine: &mut Engine,
        requests: Vec<(Key, QueryKind)>,
    ) -> Result<Vec<LookupOutcome>> {
        let n = self.workers.min(engine.local_shard_count().max(1));
        // Sequential prologue: register aggregation state and consult
        // the entry caches (identical flow to the sequential pump).
        let mut ids = Vec::with_capacity(requests.len());
        let mut inits = Vec::with_capacity(requests.len());
        for (entry, query) in requests {
            match engine.begin_request(&entry, query) {
                Ok((id, env)) => {
                    ids.push(id);
                    inits.push(env);
                }
                Err(e) => {
                    // Unwind the prologue: earlier registrations must
                    // not linger as zombie aggregations/learn intents.
                    for id in ids {
                        engine.gathers.release(id);
                        engine.learn.remove(&id);
                    }
                    return Err(e);
                }
            }
        }

        // Carve the slices: contiguous runs of the ring order, so
        // ring-adjacent peers (and with them most tree edges) share a
        // worker. Freeze the routing snapshot against them.
        let detached = engine.detach_shards();
        let m = detached.len();
        let interned = engine.directory.interned_len();
        let mut route = RouteTable {
            hosts: Vec::new(),
            worker_of: vec![NONE_WORKER; interned],
            slot_of: vec![0; interned],
        };
        engine.directory.host_snapshot(&mut route.hosts);
        let mut slices: Vec<Slice> = (0..n).map(|_| Slice::default()).collect();
        {
            let (base, rem) = (m / n, m % n);
            let mut shards = detached.into_iter();
            for (w, slice) in slices.iter_mut().enumerate() {
                for _ in 0..base + usize::from(w < rem) {
                    let (pid, shard) = shards.next().expect("chunks cover the partition");
                    route.worker_of[pid as usize] = w as u16;
                    route.slot_of[pid as usize] = slice.shards.len() as u32;
                    slice.ids.push(pid);
                    slice.shards.push(shard);
                }
            }
        }

        // Route the initial envelopes.
        let mut queues: Vec<VecDeque<Envelope>> = (0..n).map(|_| VecDeque::new()).collect();
        let mut failed_early: Vec<DiscoveryOutcome> = Vec::new();
        for env in inits {
            let w = match &env.to {
                Address::Node(label) => route.route(&engine.directory, label).map(|(w, _)| w),
                _ => None,
            };
            match w {
                Some(w) => queues[w as usize].push_back(env),
                None => {
                    engine.stats.undeliverable += 1;
                    failed_early.push(failed_outcome(&env));
                }
            }
        }

        // The bounded mesh: ring `s·n + r` carries `s → r`.
        let rings: Vec<Ring> = (0..n * n).map(|_| Ring::new(RING_CAP)).collect();
        let roster = Roster::new(n);
        let failed = AtomicBool::new(false);
        let directory = &engine.directory;
        let charge = engine.config.charge_capacity;
        let trace = engine.tracer.enabled();
        #[cfg(test)]
        let sabotage = self.sabotage;
        #[cfg(not(test))]
        let sabotage: Option<usize> = None;
        let mut outs: Vec<WorkerOut> = Vec::with_capacity(n);
        // A worker that panics is caught at its own boundary (its
        // slice comes back intact); `join` can only fail if the caught
        // panic itself panicked — treated as a failed worker too.
        let mut join_failed = false;
        std::thread::scope(|scope| {
            let rings = &rings;
            let roster = &roster;
            let failed = &failed;
            let mut handles = Vec::with_capacity(n);
            for (w, (slice, queue)) in slices.drain(..).zip(queues.drain(..)).enumerate() {
                let txs: Vec<&Ring> = (0..n).map(|r| &rings[w * n + r]).collect();
                let rxs: Vec<&Ring> = (0..n).map(|s| &rings[s * n + w]).collect();
                let route = route.clone();
                handles.push(scope.spawn(move || {
                    worker_loop(
                        w, slice, queue, txs, rxs, directory, route, charge, trace, failed, roster,
                        sabotage,
                    )
                }));
            }
            for h in handles {
                match h.join() {
                    Ok(out) => outs.push(out),
                    Err(_) => join_failed = true,
                }
            }
        });

        // Reassemble the engine: slices back onto their slots, stats
        // merged in worker order, slice ownership recorded for health.
        engine.pump_health.slice_of.clear();
        engine.pump_health.slice_of.resize(interned, 0);
        engine.pump_health.slices = n as u16;
        let mut ring_peak = 0u32;
        for out in &mut outs {
            let ids = std::mem::take(&mut out.slice.ids);
            let shards = std::mem::take(&mut out.slice.shards);
            for (pid, shard) in ids.into_iter().zip(shards) {
                engine.pump_health.slice_of[pid as usize] = out.worker as u16 + 1;
                engine.attach_shard(pid, shard);
            }
            engine.stats.discovery_messages += out.discovery_messages;
            engine.stats.discovery_drops += out.discovery_drops;
            engine.stats.undeliverable += out.undeliverable;
            ring_peak = ring_peak.max(out.ring_peak);
        }
        engine.pump_health.ring_peak = ring_peak;

        // Worker trace events merge by the same `(round, worker, seq)`
        // tag as the response fold below, so the trace interleaves
        // exactly as a sequential replay of the batch would.
        if trace {
            let mut events: Vec<TraceEvent> = Vec::new();
            for out in &mut outs {
                events.append(&mut out.events);
            }
            events.sort_by_key(merge_key);
            for ev in events {
                engine.tracer.absorb(ev);
            }
        }

        // Deterministic fold: all responses in causal (round, worker,
        // sequence) order, then the failures synthesized before launch.
        let mut tagged: Vec<(u32, u32, u32, DiscoveryOutcome)> = Vec::new();
        for out in &mut outs {
            for e in out.log.drain(..) {
                tagged.push((e.round, out.worker, e.seq, e.outcome));
            }
        }
        tagged.sort_by_key(|t| (t.0, t.1, t.2));
        for (_, _, _, o) in tagged {
            engine.client_response(o);
        }
        for o in failed_early {
            engine.client_response(o);
        }

        // A dead worker means an unknown number of envelopes never
        // arrived: the partial responses folded above are kept (they
        // may have finalized some requests), everything still in
        // flight is purged so no zombie aggregation lingers, and the
        // caller gets an error instead of a process abort.
        if join_failed || outs.iter().any(|o| o.failed) {
            let mut completed = 0;
            for id in ids {
                if engine.take_finished(id).is_some() {
                    completed += 1;
                } else {
                    engine.gathers.release(id);
                    engine.learn.remove(&id);
                }
            }
            return Err(DlptError::WorkerFailed { completed });
        }

        let mut results = Vec::with_capacity(ids.len());
        for id in ids {
            let out = if let Some(out) = engine.take_finished(id) {
                out
            } else if engine.gathers.contains(id) {
                // Quiescence-judging engines never eagerly finalize;
                // the pump is drained here, so judging now is exactly
                // what `judge_at_quiescence` asks for.
                engine.finish_request(id)
            } else {
                return Err(DlptError::Undeliverable(format!("request {id}")));
            };
            results.push(out);
        }
        Ok(results)
    }
}

/// The worker that owns one slice. A panic inside the epochs is caught
/// here, at the worker boundary, so the slice survives (it lives in
/// this frame, not in the panicked closure) and the batch can fail
/// cleanly; the shared flag tells every waiting sibling to wind down
/// instead of spinning on a credit that will never come.
#[allow(clippy::too_many_arguments)]
fn worker_loop<'a>(
    me: usize,
    mut slice: Slice,
    mut queue: VecDeque<Envelope>,
    txs: Vec<&'a Ring>,
    rxs: Vec<&'a Ring>,
    directory: &Directory,
    route: RouteTable,
    charge: bool,
    trace: bool,
    failed: &'a AtomicBool,
    roster: &'a Roster,
    sabotage: Option<usize>,
) -> WorkerOut {
    // Register this worker's handle so siblings can unpark it, then
    // wait for the full roster: a credit may be sent the moment the
    // epochs start, and its unpark must never miss an unregistered
    // receiver. Registration cannot fail, so the barrier always
    // completes — even a sabotaged worker registers before it panics.
    roster.threads[me]
        .set(std::thread::current())
        .expect("worker registers its parker exactly once");
    while roster.threads.iter().any(|p| p.get().is_none()) {
        std::thread::yield_now();
    }
    let mut out = WorkerOut {
        worker: me as u32,
        slice: Slice::default(),
        log: Vec::new(),
        events: Vec::new(),
        discovery_messages: 0,
        discovery_drops: 0,
        undeliverable: 0,
        ring_peak: 0,
        failed: false,
    };
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if sabotage == Some(me) {
            panic!("injected worker failure (test sabotage)");
        }
        let mut worker = Worker {
            mesh: Mesh::new(me, txs, rxs, failed, roster),
            slice: &mut slice,
            queue: &mut queue,
            directory,
            route,
            charge,
            trace,
            fx: Effects::default(),
            seq: 0,
            out: &mut out,
        };
        worker.run_epochs();
        worker.out.ring_peak = worker.mesh.ring_peak;
    }));
    if caught.is_err() {
        out.failed = true;
        failed.store(true, Ordering::Release);
    }
    out.slice = slice;
    out
}

/// One worker's execution state: the owned slice, the local FIFO, the
/// ring mesh and the frozen routing tables.
struct Worker<'a> {
    mesh: Mesh<'a>,
    slice: &'a mut Slice,
    queue: &'a mut VecDeque<Envelope>,
    directory: &'a Directory,
    route: RouteTable,
    charge: bool,
    trace: bool,
    fx: Effects,
    seq: u32,
    out: &'a mut WorkerOut,
}

impl Worker<'_> {
    /// The credit epochs. Epoch `e > 0` consumes each sender's
    /// epoch-`(e−1)` batch in worker-index order (stalling only for
    /// the matching credit), then the worker's own chained hops, then
    /// closes the epoch with credits. The summed epoch totals give
    /// every worker the same termination verdict.
    fn run_epochs(&mut self) {
        let n = self.mesh.txs.len();
        let me = self.mesh.me;
        let mut epoch: u32 = 0;
        let mut my_total: u64 = 0;
        loop {
            let mut total: u64 = 0;
            if epoch > 0 {
                let mut global = my_total;
                for s in 0..n {
                    if s == me {
                        continue;
                    }
                    let Some((sent, their_total)) = self.mesh.wait_credit(s, epoch - 1) else {
                        self.out.failed = true;
                        return;
                    };
                    global += their_total;
                    for _ in 0..sent {
                        let env = self.mesh.take_env(s);
                        total += self.deliver(env, epoch);
                        if self.out.failed {
                            return;
                        }
                    }
                }
                if global == 0 {
                    return;
                }
            }
            while let Some(env) = self.queue.pop_front() {
                total += self.deliver(env, epoch);
                if self.out.failed {
                    return;
                }
            }
            for r in 0..n {
                if r == me {
                    continue;
                }
                if !self.mesh.send_credit(r, epoch, total) {
                    self.out.failed = true;
                    return;
                }
            }
            my_total = total;
            epoch += 1;
        }
    }

    fn next_seq(&mut self) -> u32 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    fn log(&mut self, round: u32, outcome: DiscoveryOutcome) {
        let seq = self.next_seq();
        self.out.log.push(LoggedOutcome {
            round,
            seq,
            outcome,
        });
    }

    /// Delivers one envelope on this slice (or forwards it). Returns
    /// how many envelopes it emitted (local chains + ring pushes), the
    /// quantity the credit totals sum for termination.
    fn deliver(&mut self, env: Envelope, round: u32) -> u64 {
        match &env.to {
            Address::Client(_) => {
                if let Message::ClientResponse(o) = env.msg {
                    self.log(round, o);
                }
                return 0;
            }
            Address::Node(_) => {}
            Address::Peer(_) => {
                // Discovery batches carry no peer traffic; a stray
                // frame is dropped (counted) rather than wedging the
                // mesh.
                self.out.undeliverable += 1;
                return 0;
            }
        }
        let Address::Node(label) = &env.to else {
            unreachable!("matched above")
        };
        let Some((w, slot)) = self.route.route(self.directory, label) else {
            // Tree mutated since the batch started — not supported;
            // fail the request rather than deadlocking on a requeue.
            self.out.undeliverable += 1;
            let outcome = failed_outcome(&env);
            self.log(round, outcome);
            return 0;
        };
        if w as usize != self.mesh.me {
            if !self.mesh.send_env(w as usize, env) {
                self.out.failed = true;
                return 0;
            }
            return 1;
        }
        let shard = &mut self.slice.shards[slot as usize];
        let Envelope { to, msg } = env;
        let Address::Node(label) = to else {
            unreachable!("checked above")
        };
        let Message::Node(NodeMsg::Discovery(m)) = msg else {
            self.out.undeliverable += 1;
            return 0;
        };
        // Same gate as the sequential engine dispatch, minus requeues
        // (the directory is frozen for the batch) and replica failover
        // (see the module docs).
        let (req, hops) = (m.request_id, m.path.len());
        match discovery::deliver_visit(shard, &label, m, self.charge, &mut self.fx) {
            discovery::VisitGate::Missing(m) => {
                self.out.undeliverable += 1;
                let outcome = failed_discovery(&label, m);
                self.log(round, outcome);
                return 0;
            }
            discovery::VisitGate::Dropped(m) => {
                self.out.discovery_drops += 1;
                let mut path = m.path;
                path.push(label.clone());
                if self.trace {
                    let (lid, hid) = self
                        .directory
                        .resolve(&label)
                        .unwrap_or((u32::MAX, u32::MAX));
                    let seq = self.next_seq();
                    self.out.events.push(TraceEvent {
                        request: req as u32,
                        a: lid,
                        b: hid,
                        round,
                        seq,
                        kind: EventKind::Drop,
                        flags: 0,
                        worker: self.mesh.me as u16,
                        depth: path.len().min(u16::MAX as usize) as u16,
                    });
                }
                self.log(
                    round,
                    DiscoveryOutcome {
                        request_id: m.request_id,
                        satisfied: false,
                        dropped: true,
                        results: Vec::new(),
                        path,
                        pending_children: 0,
                    },
                );
                return 0;
            }
            discovery::VisitGate::Delivered => {}
        }
        self.out.discovery_messages += 1;
        if self.trace {
            let (lid, hid) = self
                .directory
                .resolve(&label)
                .unwrap_or((u32::MAX, u32::MAX));
            let seq = self.next_seq();
            self.out.events.push(TraceEvent {
                request: req as u32,
                a: lid,
                b: hid,
                round,
                seq,
                kind: EventKind::Hop,
                flags: 0,
                worker: self.mesh.me as u16,
                depth: hops.min(u16::MAX as usize) as u16,
            });
        }
        debug_assert!(
            self.fx.relocated.is_empty() && self.fx.removed.is_empty(),
            "discovery never mutates the tree"
        );
        self.fx.relocated.clear();
        self.fx.removed.clear();
        let mut emitted = 0u64;
        let mut fx_out = std::mem::take(&mut self.fx.out);
        for env in fx_out.drain(..) {
            match &env.to {
                Address::Client(_) => {
                    if let Message::ClientResponse(o) = env.msg {
                        self.log(round, o);
                    }
                }
                Address::Node(l) => match self.route.route(self.directory, l) {
                    Some((w, _)) if w as usize == self.mesh.me => {
                        self.queue.push_back(env);
                        emitted += 1;
                    }
                    Some((w, _)) => {
                        if !self.mesh.send_env(w as usize, env) {
                            self.out.failed = true;
                            break;
                        }
                        emitted += 1;
                    }
                    None => {
                        self.out.undeliverable += 1;
                        let outcome = failed_outcome(&env);
                        self.log(round, outcome);
                    }
                },
                Address::Peer(_) => self.out.undeliverable += 1,
            }
        }
        self.fx.out = fx_out;
        emitted
    }
}

/// A failed response resolving the request of an undeliverable
/// discovery envelope (mirrors the sequential requeue-budget path).
fn failed_outcome(env: &Envelope) -> DiscoveryOutcome {
    let (id, path) = match &env.msg {
        Message::Node(NodeMsg::Discovery(m)) => (m.request_id, m.path.clone()),
        _ => (0, Vec::new()),
    };
    DiscoveryOutcome {
        request_id: id,
        satisfied: false,
        dropped: true,
        results: Vec::new(),
        path,
        pending_children: 0,
    }
}

fn failed_discovery(label: &Key, m: DiscoveryMsg) -> DiscoveryOutcome {
    let mut path = m.path;
    path.push(label.clone());
    DiscoveryOutcome {
        request_id: m.request_id,
        satisfied: false,
        dropped: true,
        results: Vec::new(),
        path,
        pending_children: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::DlptSystem;

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    fn built_system(seed: u64, capacity: u32) -> DlptSystem {
        let mut sys = DlptSystem::builder()
            .seed(seed)
            .peer_id_len(10)
            .default_capacity(capacity)
            .bootstrap_peers(10)
            .build();
        for i in 0..30 {
            sys.insert_data(k(&format!("SVC{i:02}"))).unwrap();
        }
        for name in ["DGEMM", "DGEMV", "DTRSM", "S3L_fft", "S3L_sort"] {
            sys.insert_data(k(name)).unwrap();
        }
        sys.end_time_unit();
        sys
    }

    fn query_mix() -> Vec<QueryKind> {
        let mut qs = Vec::new();
        for i in 0..40 {
            qs.push(QueryKind::Exact(k(&format!("SVC{:02}", i % 30))));
        }
        qs.push(QueryKind::Exact(k("MISSING")));
        qs.push(QueryKind::Complete(k("S3L")));
        qs.push(QueryKind::Range(k("D"), k("E")));
        qs
    }

    #[test]
    fn ring_is_fifo_bounded_and_drains_on_drop() {
        let ring = Ring::new(4);
        let env = |i: u64| {
            Envelope::to_client(
                i,
                DiscoveryOutcome {
                    request_id: i,
                    satisfied: true,
                    dropped: false,
                    results: Vec::new(),
                    path: Vec::new(),
                    pending_children: 0,
                },
            )
        };
        // SAFETY (whole test): single thread — trivially SPSC.
        unsafe {
            for i in 0..4 {
                match ring.push(Lane::Env(env(i))) {
                    Ok(depth) => assert_eq!(depth, i as usize + 1),
                    Err(_) => panic!("ring must accept {i}"),
                }
            }
            assert!(
                ring.push(Lane::Credit {
                    epoch: 0,
                    sent: 0,
                    total: 0
                })
                .is_err(),
                "a full ring hands the lane back"
            );
            for i in 0..2 {
                match ring.pop() {
                    Some(Lane::Env(e)) => match e.msg {
                        Message::ClientResponse(o) => assert_eq!(o.request_id, i),
                        other => panic!("unexpected message {other:?}"),
                    },
                    other => panic!("expected env, got {}", other.is_some()),
                }
            }
            // Freed slots are reusable (cursors are monotone, slots
            // wrap), and dropping a non-empty ring drops its lanes.
            assert!(ring
                .push(Lane::Credit {
                    epoch: 7,
                    sent: 1,
                    total: 2
                })
                .is_ok());
        }
        drop(ring);
    }

    #[test]
    fn parallel_batch_matches_sequential_requests() {
        let mut seq_sys = built_system(42, u32::MAX >> 1);
        let mut par_sys = built_system(42, u32::MAX >> 1);
        let seq_out: Vec<_> = query_mix()
            .into_iter()
            .map(|q| seq_sys.request(q).unwrap())
            .collect();
        let par_out = par_sys.discover_batch(query_mix(), 4).unwrap();
        assert_eq!(seq_out.len(), par_out.len());
        for (a, b) in seq_out.iter().zip(&par_out) {
            assert_eq!(a.satisfied, b.satisfied);
            assert_eq!(a.found, b.found);
            assert_eq!(a.dropped, b.dropped);
            assert_eq!(a.results, b.results);
        }
        // Exact queries have a single route: full outcome equality.
        for (a, b) in seq_out.iter().zip(&par_out).take(40) {
            assert_eq!(a, b);
        }
        assert_eq!(
            seq_sys.stats.discovery_messages,
            par_sys.stats.discovery_messages
        );
    }

    #[test]
    fn seeded_parallel_runs_are_byte_identical() {
        let run = || {
            let mut sys = built_system(7, u32::MAX >> 1);
            let out = sys.discover_batch(query_mix(), 4).unwrap();
            (out, sys.stats.clone())
        };
        let (out_a, stats_a) = run();
        let (out_b, stats_b) = run();
        assert_eq!(out_a, out_b);
        assert_eq!(stats_a, stats_b);
    }

    #[test]
    fn worker_count_does_not_change_results_without_capacity_pressure() {
        let reference = {
            let mut sys = built_system(11, u32::MAX >> 1);
            sys.discover_batch(query_mix(), 1).unwrap()
        };
        for workers in [2, 3, 4, 8] {
            let mut sys = built_system(11, u32::MAX >> 1);
            let got = sys.discover_batch(query_mix(), workers).unwrap();
            assert_eq!(reference.len(), got.len(), "workers={workers}");
            for (a, b) in reference.iter().zip(&got) {
                assert_eq!(a.satisfied, b.satisfied, "workers={workers}");
                assert_eq!(a.results, b.results, "workers={workers}");
            }
        }
    }

    #[test]
    fn capacity_pressure_is_deterministic_per_worker_count() {
        let run = || {
            let mut sys = built_system(13, 40);
            let out = sys.discover_batch(query_mix(), 4).unwrap();
            (out, sys.stats.clone())
        };
        let (out_a, stats_a) = run();
        let (out_b, stats_b) = run();
        assert_eq!(out_a, out_b);
        assert_eq!(stats_a, stats_b);
        assert!(
            stats_a.discovery_drops > 0,
            "capacity 6 must refuse some visits: {stats_a:?}"
        );
        assert!(out_a.iter().any(|o| o.dropped), "drops surface to clients");
        assert!(
            out_a.iter().any(|o| o.satisfied),
            "pressure must not refuse everything"
        );
    }

    #[test]
    fn cached_batches_learn_and_hit_through_the_shared_flow() {
        let mut sys = DlptSystem::builder()
            .seed(23)
            .peer_id_len(10)
            .cache_capacity(64)
            .bootstrap_peers(6)
            .build();
        for name in ["DGEMM", "DGEMV", "DTRSM", "S3L_fft"] {
            sys.insert_data(k(name)).unwrap();
        }
        let hot: Vec<QueryKind> = (0..64).map(|_| QueryKind::Exact(k("DGEMM"))).collect();
        let out = sys.discover_batch(hot.clone(), 4).unwrap();
        assert!(out.iter().all(|o| o.satisfied));
        assert!(sys.cache_stats.learned > 0, "{:?}", sys.cache_stats);
        let out = sys.discover_batch(hot, 4).unwrap();
        assert!(out.iter().all(|o| o.satisfied));
        assert!(out.iter().all(|o| o.results == vec![k("DGEMM")]));
        assert!(sys.cache_stats.hits > 0, "{:?}", sys.cache_stats);
    }

    /// Regression: the pump must also serve engines configured like
    /// the asynchronous runtimes (`judge_at_quiescence`), which never
    /// eagerly finalize — the epilogue judges their still-registered
    /// gathers once the mesh is drained instead of erroring out.
    #[test]
    fn quiescence_judging_engines_run_batches_and_learn_shortcuts() {
        use crate::engine::{Engine, EngineConfig};
        use crate::node::NodeState;
        let mut e = Engine::new(EngineConfig {
            judge_at_quiescence: true,
            cache_capacity: 16,
            ..EngineConfig::default()
        });
        e.add_local_shard(k("PAAA"), 100);
        e.add_local_shard(k("ZAAA"), 100);
        let mut node = NodeState::new(k("DGEMM"));
        node.data.insert(k("DGEMM"));
        let host = e.host_peer(&k("DGEMM")).unwrap().clone();
        e.shard_mut(&host).unwrap().install(node);
        e.directory.insert(k("DGEMM"), host);
        let out = ParallelPump::new(2)
            .run_batch(&mut e, vec![(k("DGEMM"), QueryKind::Exact(k("DGEMM")))])
            .unwrap();
        assert!(out[0].satisfied);
        assert_eq!(out[0].results, vec![k("DGEMM")]);
        // The satisfied exact query must teach the entry peer's cache
        // through the quiescence-judging epilogue (`finish_request`),
        // not silently drop the learn intent.
        assert_eq!(e.cache_stats.learned, 1, "{:?}", e.cache_stats);
        let out = ParallelPump::new(2)
            .run_batch(&mut e, vec![(k("DGEMM"), QueryKind::Exact(k("DGEMM")))])
            .unwrap();
        assert!(out[0].satisfied);
        assert_eq!(e.cache_stats.hits, 1, "{:?}", e.cache_stats);
    }

    /// Satellite regression: one worker dying mid-batch used to
    /// deadlock-or-panic the whole process at the barrier. It must
    /// fail the batch with an error, keep every shard, purge the
    /// batch's in-flight aggregation state, and leave the engine fully
    /// usable.
    #[test]
    fn a_dying_worker_fails_the_batch_without_poisoning_the_engine() {
        let mut sys = built_system(17, u32::MAX >> 1);
        let nodes_before = sys.node_labels().len();
        let peers_before = sys.peer_ids().len();
        let entry = sys.node_labels().into_iter().next().unwrap();
        let requests: Vec<(Key, QueryKind)> = query_mix()
            .into_iter()
            .map(|q| (entry.clone(), q))
            .collect();
        let err = ParallelPump::sabotaged(4, 2)
            .run_batch(&mut sys, requests.clone())
            .unwrap_err();
        assert!(
            matches!(err, DlptError::WorkerFailed { .. }),
            "expected WorkerFailed, got {err:?}"
        );
        // No shard was lost and no zombie aggregation lingers.
        assert_eq!(sys.node_labels().len(), nodes_before);
        assert_eq!(sys.peer_ids().len(), peers_before);
        assert!(sys.gathers.is_empty(), "batch state must be purged");
        // The engine is still fully serviceable, batch and sequential.
        let out = ParallelPump::new(4).run_batch(&mut sys, requests).unwrap();
        assert!(out.iter().any(|o| o.satisfied));
        let out = sys.request(QueryKind::Exact(k("SVC00"))).unwrap();
        assert!(out.satisfied);
    }

    #[test]
    fn more_workers_than_peers_clamps_cleanly() {
        let mut sys = DlptSystem::builder()
            .seed(3)
            .peer_id_len(8)
            .bootstrap_peers(2)
            .build();
        sys.insert_data(k("DGEMM")).unwrap();
        let out = sys
            .discover_batch(vec![QueryKind::Exact(k("DGEMM"))], 16)
            .unwrap();
        assert!(out[0].satisfied);
    }

    /// Satellite regression (observability): a batch must leave behind
    /// the slice map and the ring high-water mark that
    /// `Engine::collect_health` surfaces as per-peer slice occupancy.
    #[test]
    fn pump_health_records_slice_ownership_and_ring_depth() {
        let mut sys = built_system(42, u32::MAX >> 1);
        sys.discover_batch(query_mix(), 3).unwrap();
        assert_eq!(sys.pump_health.slices, 3);
        let assigned = sys.pump_health.slice_of.iter().filter(|&&s| s != 0).count();
        assert_eq!(
            assigned,
            sys.peer_ids().len(),
            "every local shard belongs to exactly one slice"
        );
        for w in 1..=3u16 {
            assert!(
                sys.pump_health.slice_of.contains(&w),
                "slice {w} must own at least one peer"
            );
        }
        assert!(
            sys.pump_health.ring_peak > 0,
            "cross-slice traffic must register on the rings"
        );
        // Slices are contiguous runs of the ring order: walking the
        // members in order, the slice index never decreases.
        let mut last = 0u16;
        for id in sys.peer_ids() {
            let pid = sys.directory().id_of(&id).unwrap();
            let s = sys.pump_health.slice_of[pid as usize];
            assert!(s >= last, "ring order must map to contiguous slices");
            last = s;
        }
    }
}

//! Property tests of the peer slab and the interned directory under
//! full-protocol churn (ISSUE 7 satellite): arbitrary sequences of
//! peer join / graceful leave / crash-with-promotion / rename (the MLT
//! boundary move) / node migration / data churn must preserve
//!
//! * the `Directory` id↔`Key` bijection,
//! * the slab's free-list integrity (live slots and freed slots
//!   partition the slab; no id aliases a recycled slot), and
//! * the paper's ring invariant plus lookup correctness.
//!
//! This lives inside the engine module (not `tests/`) because the
//! free-list invariants are about private state — `Engine::check_slab`
//! inspects the slab directly.

use crate::alphabet::Alphabet;
use crate::key::Key;
use crate::system::DlptSystem;
use proptest::prelude::*;

/// One churn step; indices are resolved against the live peer list /
/// key pool at execution time so every generated sequence is valid.
#[derive(Debug, Clone)]
enum ChurnOp {
    AddPeer,
    LeavePeer(u16),
    CrashPeer(u16),
    RenamePeer(u16),
    MigrateNode(u16),
    InsertData(u16),
    RemoveData(u16),
}

fn churn_op() -> impl Strategy<Value = ChurnOp> {
    prop_oneof![
        Just(ChurnOp::AddPeer),
        any::<u16>().prop_map(ChurnOp::LeavePeer),
        any::<u16>().prop_map(ChurnOp::CrashPeer),
        any::<u16>().prop_map(ChurnOp::RenamePeer),
        any::<u16>().prop_map(ChurnOp::MigrateNode),
        any::<u16>().prop_map(ChurnOp::InsertData),
        any::<u16>().prop_map(ChurnOp::InsertData),
        any::<u16>().prop_map(ChurnOp::RemoveData),
    ]
}

/// All 39 keys of length 1–3 over the `012` alphabet — small enough
/// that removals and re-registrations constantly revisit the same
/// interned ids.
fn key_pool() -> Vec<Key> {
    let mut pool = Vec::new();
    let digits = [b'0', b'1', b'2'];
    for a in digits {
        pool.push(Key::from_bytes(vec![a]));
        for b in digits {
            pool.push(Key::from_bytes(vec![a, b]));
            for c in digits {
                pool.push(Key::from_bytes(vec![a, b, c]));
            }
        }
    }
    pool
}

/// Every id ever interned still round-trips: `id_of(key_of(id)) == id`.
fn assert_bijection(sys: &DlptSystem) {
    let d = sys.engine_ref().directory();
    for id in 0..d.interned_len() as u32 {
        assert_eq!(
            d.id_of(d.key_of(id)),
            Some(id),
            "intern round-trip broke for id {id}"
        );
    }
}

fn assert_slab_and_ring(sys: &DlptSystem) {
    if let Err(msg) = sys.engine_ref().check_slab() {
        panic!("slab violation: {msg}");
    }
    if let Err(v) = sys.engine_ref().check_ring() {
        panic!("ring violation: {v:?}");
    }
}

proptest! {
    // Each case runs full join/leave/crash protocol rounds; keep the
    // population modest so the whole family stays in CI budget.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn slab_and_directory_survive_arbitrary_churn(
        seed in any::<u64>(),
        ops in proptest::collection::vec(churn_op(), 1..16),
    ) {
        let pool = key_pool();
        let alphabet = Alphabet::new(b"012", "prop");
        let mut sys = DlptSystem::builder()
            .alphabet(alphabet.clone())
            .seed(seed)
            .peer_id_len(6)
            .replication(2) // crashes promote follower copies
            .default_capacity(100_000) // capacity refusals are not under test
            .bootstrap_peers(4)
            .build();
        let mut peers: Vec<Key> = sys.engine_ref().peer_ids();
        let mut model: Vec<Key> = Vec::new();
        // Seed one registration so lookups always have a tree to walk.
        sys.insert_data(pool[0].clone()).expect("seed registration");
        model.push(pool[0].clone());
        assert_bijection(&sys);
        assert_slab_and_ring(&sys);

        for op in ops {
            match op {
                ChurnOp::AddPeer => {
                    let id = sys.add_peer(100_000).expect("join");
                    peers.push(id);
                }
                ChurnOp::LeavePeer(i) => {
                    if peers.len() > 3 {
                        let id = peers.remove(i as usize % peers.len());
                        sys.leave_peer(&id).expect("graceful leave");
                    }
                }
                ChurnOp::CrashPeer(i) => {
                    if peers.len() > 3 {
                        // Converge replicas first so every node has a
                        // live follower: the crash then promotes
                        // instead of losing nodes — the promotion arm
                        // of the id-reuse property.
                        sys.anti_entropy().expect("anti-entropy");
                        let id = peers.remove(i as usize % peers.len());
                        let lost = sys.crash_peer(&id).expect("crash");
                        prop_assert!(
                            lost.is_empty(),
                            "with k=2 and fresh replicas a crash loses nothing, lost {:?}",
                            lost
                        );
                        sys.repair_tree();
                    }
                }
                ChurnOp::RenamePeer(i) => {
                    // `rename_peer` is the MLT boundary move: it
                    // renames in place without re-splicing the ring,
                    // so the new identifier must keep the peer
                    // strictly between its ring neighbours.
                    let at = i as usize % peers.len();
                    let old = peers[at].clone();
                    let (pred, succ) = {
                        let sh = sys.engine_ref().shard(&old).expect("live peer");
                        (sh.peer.pred.clone(), sh.peer.succ.clone())
                    };
                    let new = if pred < old {
                        alphabet.id_between(&pred, &old)
                    } else if old < succ {
                        alphabet.id_between(&old, &succ)
                    } else {
                        None // wrap-around singleton arc: skip
                    };
                    if let Some(new) = new {
                        sys.rename_peer(&old, new.clone()).expect("boundary move");
                        peers[at] = new;
                    }
                }
                ChurnOp::MigrateNode(i) => {
                    if let Some(label) = sys.random_node() {
                        let to = peers[i as usize % peers.len()].clone();
                        // Moving a node off its canonical host is a
                        // legal transient; ignore rejections (e.g.
                        // migrating to the current host).
                        let _ = sys.migrate_node(&label, &to);
                    }
                }
                ChurnOp::InsertData(i) => {
                    let k = pool[i as usize % pool.len()].clone();
                    sys.insert_data(k.clone()).expect("registration");
                    if !model.contains(&k) {
                        model.push(k);
                    }
                }
                ChurnOp::RemoveData(i) => {
                    if model.len() > 1 {
                        let k = model.remove(i as usize % model.len());
                        sys.remove_data(&k).expect("deregistration");
                    }
                }
            }
            // The canonical `host(n) = min {P >= n}` mapping is
            // deliberately not asserted: `migrate_node` leaves a legal
            // transient the balancer would resolve. The bijection, the
            // slab and routing behaviour must hold regardless.
            assert_bijection(&sys);
            assert_slab_and_ring(&sys);
            let probes: Vec<Key> = model.iter().take(3).cloned().collect();
            for k in &probes {
                prop_assert!(
                    sys.lookup(k).satisfied,
                    "registered key {} must stay discoverable",
                    k
                );
            }
            let absent = Key::from("22222");
            prop_assert!(!sys.lookup(&absent).satisfied);
            sys.end_time_unit();
        }
    }
}

//! Sequential Proper Greatest Common Prefix tree (Definition 1).
//!
//! > **Definition 1 (PGCP Tree).** A Proper Greatest Common Prefix Tree
//! > is a labeled rooted tree such that the label of each node of the
//! > tree is the Proper Greatest Common Prefix of the labels of every
//! > pair of its children.
//!
//! [`PgcpTrie`] is the in-memory, single-owner realization of that
//! structure. It serves three roles in the workspace:
//!
//! 1. **Correctness oracle** — the distributed overlay
//!    ([`crate::system::DlptSystem`]) must converge to exactly the tree
//!    this structure builds for the same key set (property-tested);
//! 2. **Local engine** — range queries and completions over a node's
//!    subtree reuse this code;
//! 3. **Illustration** — `examples/tree_visualization.rs` renders
//!    Figure 1 of the paper from it.
//!
//! The arena representation (indices, not `Rc`) keeps nodes cache-
//! friendly and makes invariant checking and traversal trivial.

use crate::key::Key;
use std::collections::BTreeSet;

/// Index of a node inside the arena.
pub type TrieNodeId = usize;

/// One vertex of the PGCP tree.
#[derive(Debug, Clone)]
pub struct TrieNode {
    /// Full label of the node (not an edge fragment): the greatest
    /// common prefix of all keys stored in its subtree.
    pub label: Key,
    /// Parent link (`None` for the root).
    pub parent: Option<TrieNodeId>,
    /// Children, kept sorted by label; pairwise GCP of their labels is
    /// exactly `label`.
    pub children: Vec<TrieNodeId>,
    /// The data set `δ` — service keys registered at this node. A key
    /// `k` is always stored on the node labeled `k`, so `data` is
    /// non-empty only when this node's label was inserted.
    pub data: BTreeSet<Key>,
    /// Tombstone marker used by the arena on removal.
    live: bool,
}

/// A sequential PGCP tree over an arbitrary digit alphabet.
///
/// ```
/// use dlpt_core::{PgcpTrie, Key};
/// let mut t = PgcpTrie::new();
/// for k in ["01", "10101", "10111", "101111"] {
///     t.insert(Key::from(k));
/// }
/// // Figure 1(a): the non-filled nodes ε and 101 were created to
/// // maintain Definition 1.
/// assert_eq!(t.node_count(), 6);
/// assert!(t.contains(&Key::from("10101")));
/// assert!(!t.contains(&Key::from("101"))); // structural, no data
/// t.check_invariants().unwrap();
/// ```
#[derive(Debug, Clone, Default)]
pub struct PgcpTrie {
    arena: Vec<TrieNode>,
    root: Option<TrieNodeId>,
    live_count: usize,
    key_count: usize,
}

/// A violation of Definition 1 or of basic tree shape, reported by
/// [`PgcpTrie::check_invariants`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrieViolation {
    /// A child's label does not properly extend its parent's label.
    ChildNotExtension {
        /// Parent label.
        parent: Key,
        /// Offending child label.
        child: Key,
    },
    /// Two children of the same node share a longer prefix than the
    /// node's label — their PGCP is not the parent label.
    PairGcpMismatch {
        /// Parent label.
        parent: Key,
        /// First child.
        a: Key,
        /// Second child.
        b: Key,
    },
    /// A parent pointer does not match the tree structure.
    BrokenParentLink {
        /// Node with the inconsistent link.
        node: Key,
    },
    /// A node stores a data key different from its label.
    DataLabelMismatch {
        /// Node label.
        node: Key,
        /// Foreign key found in its data set.
        data: Key,
    },
    /// The same label appears on two nodes.
    DuplicateLabel {
        /// The duplicated label.
        label: Key,
    },
}

impl std::fmt::Display for TrieViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrieViolation::ChildNotExtension { parent, child } => {
                write!(f, "child {child} does not properly extend parent {parent}")
            }
            TrieViolation::PairGcpMismatch { parent, a, b } => write!(
                f,
                "children {a}, {b} of {parent} share a prefix longer than the parent label"
            ),
            TrieViolation::BrokenParentLink { node } => {
                write!(f, "broken parent link at {node}")
            }
            TrieViolation::DataLabelMismatch { node, data } => {
                write!(f, "node {node} stores foreign key {data}")
            }
            TrieViolation::DuplicateLabel { label } => {
                write!(f, "label {label} appears twice")
            }
        }
    }
}

/// Clones a slice of borrowed keys into an exactly-sized owned vector.
fn clone_refs(refs: &[&Key]) -> Vec<Key> {
    let mut out = Vec::with_capacity(refs.len());
    out.extend(refs.iter().map(|k| (*k).clone()));
    out
}

/// Statistics of a lookup walk, used for hop accounting in experiments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkStats {
    /// Labels of nodes visited, in order (entry node first).
    pub path: Vec<Key>,
    /// Whether the walk ended on the node owning the key.
    pub found: bool,
}

impl WalkStats {
    /// Number of tree edges traversed.
    pub fn logical_hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }
}

impl PgcpTrie {
    /// Creates an empty tree.
    pub fn new() -> Self {
        PgcpTrie::default()
    }

    /// The root node id, if the tree is non-empty.
    pub fn root(&self) -> Option<TrieNodeId> {
        self.root
    }

    /// Number of live nodes (including structural nodes).
    pub fn node_count(&self) -> usize {
        self.live_count
    }

    /// Number of registered keys (data entries).
    pub fn key_count(&self) -> usize {
        self.key_count
    }

    /// True iff no key has been inserted.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Borrow a node by id.
    pub fn node(&self, id: TrieNodeId) -> &TrieNode {
        &self.arena[id]
    }

    fn alloc(&mut self, label: Key, parent: Option<TrieNodeId>) -> TrieNodeId {
        let id = self.arena.len();
        self.arena.push(TrieNode {
            label,
            parent,
            children: Vec::new(),
            data: BTreeSet::new(),
            live: true,
        });
        self.live_count += 1;
        id
    }

    fn kill(&mut self, id: TrieNodeId) {
        debug_assert!(self.arena[id].live);
        self.arena[id].live = false;
        self.live_count -= 1;
    }

    fn sort_children(&mut self, id: TrieNodeId) {
        let mut kids = std::mem::take(&mut self.arena[id].children);
        kids.sort_by(|&a, &b| self.arena[a].label.cmp(&self.arena[b].label));
        self.arena[id].children = kids;
    }

    /// Finds the node labeled exactly `label`, if it exists.
    pub fn find(&self, label: &Key) -> Option<TrieNodeId> {
        let mut cur = self.root?;
        loop {
            let node = &self.arena[cur];
            if &node.label == label {
                return Some(cur);
            }
            if !node.label.is_proper_prefix_of(label) {
                return None;
            }
            // At most one child can extend the shared prefix: children
            // differ pairwise at the digit right after the label.
            let next = node
                .children
                .iter()
                .copied()
                .find(|&c| self.arena[c].label.gcp_len(label) > node.label.len());
            match next {
                Some(c) => cur = c,
                None => return None,
            }
        }
    }

    /// True iff `key` is registered (has data on its node).
    pub fn contains(&self, key: &Key) -> bool {
        self.find(key)
            .map(|id| self.arena[id].data.contains(key))
            .unwrap_or(false)
    }

    /// Inserts `key` into the tree, creating at most two nodes
    /// (the key's node and, for a sibling split, their common parent
    /// labeled `GCP`), exactly as the distributed Algorithm 3 does.
    /// Returns the id of the node now owning `key`.
    pub fn insert(&mut self, key: Key) -> TrieNodeId {
        let Some(root) = self.root else {
            let id = self.alloc(key.clone(), None);
            self.arena[id].data.insert(key);
            self.root = Some(id);
            self.key_count = 1;
            return id;
        };

        let mut cur = root;
        loop {
            let cur_label = self.arena[cur].label.clone();
            if cur_label == key {
                // Case 1 (line 3.03): the node exists; add the data.
                if self.arena[cur].data.insert(key) {
                    self.key_count += 1;
                }
                return cur;
            }
            if cur_label.is_proper_prefix_of(&key) {
                // Case 2 (lines 3.04–3.09): the key belongs in this
                // subtree. Find the unique child sharing a longer
                // prefix, if any.
                let next = self.arena[cur]
                    .children
                    .iter()
                    .copied()
                    .find(|&c| self.arena[c].label.gcp_len(&key) > cur_label.len());
                match next {
                    Some(c) => {
                        let c_label = &self.arena[c].label;
                        if c_label.is_prefix_of(&key) {
                            cur = c; // descend; handles c == key at top of loop
                        } else if key.is_proper_prefix_of(c_label) {
                            // key sits between cur and c.
                            return self.splice_above(c, key);
                        } else {
                            // Siblings under a new GCP node.
                            return self.split_sibling(c, key);
                        }
                    }
                    None => {
                        // New leaf child of cur.
                        let id = self.alloc(key.clone(), Some(cur));
                        self.arena[id].data.insert(key);
                        self.key_count += 1;
                        self.arena[cur].children.push(id);
                        self.sort_children(cur);
                        return id;
                    }
                }
            } else if key.is_proper_prefix_of(&cur_label) {
                // Case 3 (lines 3.10–3.20): only reachable at the root
                // when walking down — the new key becomes an ancestor.
                debug_assert_eq!(cur, root);
                return self.splice_above(cur, key);
            } else {
                // Case 4 (lines 3.21–3.31): diverging siblings; only
                // reachable at the root when walking down.
                debug_assert_eq!(cur, root);
                return self.split_sibling(cur, key);
            }
        }
    }

    /// Inserts node `key` between `below` and its parent; `key` must be
    /// a proper prefix of `below`'s label.
    fn splice_above(&mut self, below: TrieNodeId, key: Key) -> TrieNodeId {
        debug_assert!(key.is_proper_prefix_of(&self.arena[below].label));
        let parent = self.arena[below].parent;
        let id = self.alloc(key.clone(), parent);
        self.arena[id].data.insert(key);
        self.key_count += 1;
        self.arena[id].children.push(below);
        self.arena[below].parent = Some(id);
        match parent {
            Some(p) => {
                let slot = self.arena[p]
                    .children
                    .iter()
                    .position(|&c| c == below)
                    .expect("below must be a child of its parent");
                self.arena[p].children[slot] = id;
                self.sort_children(p);
            }
            None => self.root = Some(id),
        }
        id
    }

    /// Makes `key` a sibling of `at` under a fresh structural node
    /// labeled `GCP(at.label, key)` that takes `at`'s place.
    fn split_sibling(&mut self, at: TrieNodeId, key: Key) -> TrieNodeId {
        let at_label = self.arena[at].label.clone();
        let gcp = at_label.gcp(&key);
        debug_assert!(gcp.len() < at_label.len() && gcp.len() < key.len());
        let parent = self.arena[at].parent;
        let mid = self.alloc(gcp, parent);
        let leaf = self.alloc(key.clone(), Some(mid));
        self.arena[leaf].data.insert(key);
        self.key_count += 1;
        self.arena[at].parent = Some(mid);
        self.arena[mid].children.push(at);
        self.arena[mid].children.push(leaf);
        self.sort_children(mid);
        match parent {
            Some(p) => {
                let slot = self.arena[p]
                    .children
                    .iter()
                    .position(|&c| c == at)
                    .expect("at must be a child of its parent");
                self.arena[p].children[slot] = mid;
                self.sort_children(p);
            }
            None => self.root = Some(mid),
        }
        leaf
    }

    /// Removes a registered key. Structural cleanup (an extension over
    /// the paper, which never deletes): a node left with no data and
    /// fewer than two children is dissolved so the canonical PGCP shape
    /// is preserved. Returns true iff the key was present.
    pub fn remove(&mut self, key: &Key) -> bool {
        let Some(id) = self.find(key) else {
            return false;
        };
        if !self.arena[id].data.remove(key) {
            return false;
        }
        self.key_count -= 1;
        self.dissolve_if_redundant(id);
        true
    }

    /// Dissolves `id` if it is structural (no data) with < 2 children,
    /// then retries on the parent (removal can cascade one level).
    fn dissolve_if_redundant(&mut self, id: TrieNodeId) {
        if !self.arena[id].live || !self.arena[id].data.is_empty() {
            return;
        }
        let nchildren = self.arena[id].children.len();
        if nchildren >= 2 {
            return;
        }
        let parent = self.arena[id].parent;
        if nchildren == 1 {
            // Lift the only child into our place.
            let child = self.arena[id].children[0];
            self.arena[child].parent = parent;
            match parent {
                Some(p) => {
                    let slot = self.arena[p]
                        .children
                        .iter()
                        .position(|&c| c == id)
                        .expect("parent link");
                    self.arena[p].children[slot] = child;
                    self.sort_children(p);
                }
                None => self.root = Some(child),
            }
        } else {
            // Leaf: unlink entirely.
            match parent {
                Some(p) => {
                    self.arena[p].children.retain(|&c| c != id);
                }
                None => self.root = None,
            }
        }
        self.kill(id);
        if let Some(p) = parent {
            self.dissolve_if_redundant(p);
        }
    }

    /// Exact lookup following the paper's routing: from `entry`
    /// (defaults to the root) move **upward** until the current node's
    /// label prefixes the key, then **downward** to the owning node.
    /// Returns the visited path for hop accounting.
    pub fn lookup_from(&self, entry: TrieNodeId, key: &Key) -> WalkStats {
        let mut path = Vec::new();
        let mut cur = entry;
        // Upward phase.
        loop {
            path.push(self.arena[cur].label.clone());
            if self.arena[cur].label.is_prefix_of(key) {
                break;
            }
            match self.arena[cur].parent {
                Some(p) => cur = p,
                None => break,
            }
        }
        // Downward phase.
        loop {
            let node = &self.arena[cur];
            if &node.label == key {
                return WalkStats {
                    path,
                    found: node.data.contains(key),
                };
            }
            if !node.label.is_prefix_of(key) {
                return WalkStats { path, found: false };
            }
            let next = node
                .children
                .iter()
                .copied()
                .find(|&c| self.arena[c].label.gcp_len(key) > node.label.len());
            match next {
                Some(c)
                    if self.arena[c].label.is_prefix_of(key)
                        || key.is_proper_prefix_of(&self.arena[c].label) =>
                {
                    // Descend while the child stays on the key's path;
                    // a child that merely shares a longer prefix but
                    // diverges proves the key is absent.
                    if self.arena[c].label.is_prefix_of(key) {
                        cur = c;
                        path.push(self.arena[cur].label.clone());
                    } else {
                        path.push(self.arena[c].label.clone());
                        return WalkStats { path, found: false };
                    }
                }
                _ => return WalkStats { path, found: false },
            }
        }
    }

    /// Exact lookup from the root.
    pub fn lookup(&self, key: &Key) -> WalkStats {
        match self.root {
            Some(r) => self.lookup_from(r, key),
            None => WalkStats {
                path: Vec::new(),
                found: false,
            },
        }
    }

    /// All registered keys in `[lo, hi]` (inclusive), in order.
    /// Subtrees whose label interval cannot intersect the range are
    /// pruned, which is the flexibility argument for trie overlays in
    /// the paper's introduction. The walk borrows; matches are cloned
    /// once, into an exactly-sized output.
    pub fn range(&self, lo: &Key, hi: &Key) -> Vec<Key> {
        let mut found: Vec<&Key> = Vec::new();
        if let Some(root) = self.root {
            self.range_rec(root, lo, hi, &mut found);
        }
        clone_refs(&found)
    }

    fn range_rec<'a>(&'a self, id: TrieNodeId, lo: &Key, hi: &Key, out: &mut Vec<&'a Key>) {
        let node = &self.arena[id];
        // Keys in this subtree all have `node.label` as prefix, hence
        // lie in [label, label·maxdigit^∞). Prune on both sides.
        if &node.label > hi {
            return;
        }
        // If label < lo and label is not a prefix of lo, the whole
        // subtree is below lo.
        if &node.label < lo && !node.label.is_prefix_of(lo) {
            return;
        }
        for k in node.data.iter() {
            if k >= lo && k <= hi {
                out.push(k);
            }
        }
        for &c in &node.children {
            self.range_rec(c, lo, hi, out);
        }
    }

    /// Automatic completion of a partial search string: every
    /// registered key having `prefix` as a prefix.
    pub fn complete(&self, prefix: &Key) -> Vec<Key> {
        let mut found: Vec<&Key> = Vec::new();
        let Some(root) = self.root else {
            return Vec::new();
        };
        // Descend to the highest node whose subtree covers `prefix`.
        let mut cur = root;
        loop {
            let node = &self.arena[cur];
            if prefix.is_prefix_of(&node.label) {
                // Entire subtree matches.
                self.collect_subtree(cur, &mut found);
                return clone_refs(&found);
            }
            if !node.label.is_proper_prefix_of(prefix) {
                return Vec::new(); // diverged: nothing matches
            }
            let next = node
                .children
                .iter()
                .copied()
                .find(|&c| self.arena[c].label.gcp_len(prefix) > node.label.len());
            match next {
                Some(c) => cur = c,
                None => return Vec::new(),
            }
        }
    }

    /// Gathers borrows of every data key in the subtree — cloning
    /// happens once at the API boundary, not per tree level.
    fn collect_subtree<'a>(&'a self, id: TrieNodeId, out: &mut Vec<&'a Key>) {
        let node = &self.arena[id];
        out.extend(node.data.iter());
        for &c in &node.children {
            self.collect_subtree(c, out);
        }
    }

    /// All registered keys, ascending.
    pub fn keys(&self) -> Vec<Key> {
        let mut found: Vec<&Key> = Vec::with_capacity(self.key_count);
        if let Some(root) = self.root {
            self.collect_subtree(root, &mut found);
        }
        clone_refs(&found)
    }

    /// All node labels (including structural nodes), ascending. Sorts
    /// borrows (pointer-sized swaps), then clones into an exactly-sized
    /// output.
    pub fn labels(&self) -> Vec<Key> {
        let mut refs: Vec<&Key> = Vec::with_capacity(self.live_count);
        refs.extend(self.arena.iter().filter(|n| n.live).map(|n| &n.label));
        refs.sort();
        clone_refs(&refs)
    }

    /// Depth of the tree (root = depth 0); 0 for an empty tree.
    pub fn depth(&self) -> usize {
        fn rec(t: &PgcpTrie, id: TrieNodeId) -> usize {
            t.arena[id]
                .children
                .iter()
                .map(|&c| 1 + rec(t, c))
                .max()
                .unwrap_or(0)
        }
        self.root.map(|r| rec(self, r)).unwrap_or(0)
    }

    /// Verifies Definition 1 and structural sanity over the whole tree.
    pub fn check_invariants(&self) -> std::result::Result<(), TrieViolation> {
        let Some(root) = self.root else {
            return Ok(());
        };
        let mut seen = BTreeSet::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            let node = &self.arena[id];
            if !seen.insert(node.label.clone()) {
                return Err(TrieViolation::DuplicateLabel {
                    label: node.label.clone(),
                });
            }
            for d in node.data.iter() {
                if d != &node.label {
                    return Err(TrieViolation::DataLabelMismatch {
                        node: node.label.clone(),
                        data: d.clone(),
                    });
                }
            }
            for &c in &node.children {
                let child = &self.arena[c];
                if child.parent != Some(id) {
                    return Err(TrieViolation::BrokenParentLink {
                        node: child.label.clone(),
                    });
                }
                if !node.label.is_proper_prefix_of(&child.label) {
                    return Err(TrieViolation::ChildNotExtension {
                        parent: node.label.clone(),
                        child: child.label.clone(),
                    });
                }
                stack.push(c);
            }
            // Definition 1: the label is the PGCP of every *pair* of
            // children — equivalently every two children diverge right
            // after the label.
            for (i, &a) in node.children.iter().enumerate() {
                for &b in &node.children[i + 1..] {
                    let (la, lb) = (&self.arena[a].label, &self.arena[b].label);
                    if la.gcp_len(lb) != node.label.len() {
                        return Err(TrieViolation::PairGcpMismatch {
                            parent: node.label.clone(),
                            a: la.clone(),
                            b: lb.clone(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Renders the tree as ASCII art (Figure 1 style). Structural
    /// nodes (no data) are shown in parentheses.
    pub fn render(&self) -> String {
        let mut out = String::new();
        match self.root {
            Some(root) => {
                let node = &self.arena[root];
                out.push_str(&self.node_tag(root));
                out.push('\n');
                let n = node.children.len();
                for (i, &c) in node.children.iter().enumerate() {
                    self.render_rec(c, "", i + 1 == n, &mut out);
                }
            }
            None => out.push_str("(empty)\n"),
        }
        out
    }

    fn node_tag(&self, id: TrieNodeId) -> String {
        let node = &self.arena[id];
        if node.data.is_empty() {
            format!("({})", node.label)
        } else {
            node.label.to_string()
        }
    }

    fn render_rec(&self, id: TrieNodeId, indent: &str, last: bool, out: &mut String) {
        out.push_str(indent);
        out.push_str(if last { "└── " } else { "├── " });
        out.push_str(&self.node_tag(id));
        out.push('\n');
        let child_indent = format!("{indent}{}", if last { "    " } else { "│   " });
        let node = &self.arena[id];
        let n = node.children.len();
        for (i, &c) in node.children.iter().enumerate() {
            self.render_rec(c, &child_indent, i + 1 == n, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    fn paper_tree() -> PgcpTrie {
        // Figure 1(a): keys 01, 10101, 10111, 101111.
        let mut t = PgcpTrie::new();
        for s in ["01", "10101", "10111", "101111"] {
            t.insert(k(s));
        }
        t
    }

    #[test]
    fn figure_1a_structure() {
        let t = paper_tree();
        // Nodes: ε, 01, 101, 10101, 10111, 101111 (ε and 101 structural).
        assert_eq!(t.node_count(), 6);
        assert_eq!(t.key_count(), 4);
        let labels = t.labels();
        assert_eq!(
            labels,
            vec![
                Key::epsilon(),
                k("01"),
                k("101"),
                k("10101"),
                k("10111"),
                k("101111")
            ]
        );
        assert!(!t.contains(&k("101")));
        assert!(!t.contains(&Key::epsilon()));
        t.check_invariants().unwrap();
    }

    #[test]
    fn figure_1a_insertion_order_invariance() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let base = paper_tree().labels();
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut keys = vec!["01", "10101", "10111", "101111"];
        for _ in 0..20 {
            keys.shuffle(&mut rng);
            let mut t = PgcpTrie::new();
            for s in &keys {
                t.insert(k(s));
            }
            assert_eq!(t.labels(), base, "order {keys:?}");
            t.check_invariants().unwrap();
        }
    }

    #[test]
    fn blas_tree_like_figure_1b() {
        let mut t = PgcpTrie::new();
        for s in ["DTRSM", "DTRMM", "DGEMM", "DGEMV", "DGETRF"] {
            t.insert(k(s));
        }
        t.check_invariants().unwrap();
        // Shared prefixes D, DTR, DGE, DGEM materialize as structural
        // nodes (DTRSM/DTRMM diverge right after "DTR").
        let labels = t.labels();
        assert!(labels.contains(&k("D")));
        assert!(labels.contains(&k("DTR")));
        assert!(labels.contains(&k("DGE")));
        assert!(labels.contains(&k("DGEM")));
        assert_eq!(t.key_count(), 5);
    }

    #[test]
    fn single_key_is_root() {
        let mut t = PgcpTrie::new();
        t.insert(k("DGEMM"));
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.node(t.root().unwrap()).label, k("DGEMM"));
        t.check_invariants().unwrap();
    }

    #[test]
    fn reinsert_is_idempotent() {
        let mut t = paper_tree();
        let (n, kc) = (t.node_count(), t.key_count());
        t.insert(k("10101"));
        assert_eq!(t.node_count(), n);
        assert_eq!(t.key_count(), kc);
    }

    #[test]
    fn inserting_existing_structural_label_fills_it() {
        let mut t = paper_tree();
        assert!(!t.contains(&k("101")));
        let n = t.node_count();
        t.insert(k("101"));
        assert!(t.contains(&k("101")));
        assert_eq!(t.node_count(), n, "no new node needed");
        t.check_invariants().unwrap();
    }

    #[test]
    fn key_prefixing_existing_root_becomes_ancestor() {
        let mut t = PgcpTrie::new();
        t.insert(k("10101"));
        t.insert(k("10"));
        assert_eq!(t.node(t.root().unwrap()).label, k("10"));
        assert!(t.contains(&k("10")));
        assert!(t.contains(&k("10101")));
        t.check_invariants().unwrap();
    }

    #[test]
    fn splice_between_parent_and_child() {
        let mut t = PgcpTrie::new();
        t.insert(k("1"));
        t.insert(k("10101"));
        t.insert(k("101")); // between 1 and 10101
        let labels = t.labels();
        assert_eq!(labels, vec![k("1"), k("101"), k("10101")]);
        t.check_invariants().unwrap();
    }

    #[test]
    fn lookup_finds_all_inserted_keys() {
        let t = paper_tree();
        for s in ["01", "10101", "10111", "101111"] {
            let w = t.lookup(&k(s));
            assert!(w.found, "{s}");
        }
        assert!(!t.lookup(&k("111")).found);
        assert!(!t.lookup(&k("1010")).found);
        assert!(!t.lookup(&k("101")).found, "structural node has no data");
    }

    #[test]
    fn lookup_from_entry_goes_up_then_down() {
        let t = paper_tree();
        let entry = t.find(&k("01")).unwrap();
        let w = t.lookup_from(entry, &k("101111"));
        assert!(w.found);
        // Path: 01 → ε (up) → 101 → 10111 → 101111 (down).
        assert_eq!(
            w.path,
            vec![k("01"), Key::epsilon(), k("101"), k("10111"), k("101111")]
        );
        assert_eq!(w.logical_hops(), 4);
    }

    #[test]
    fn range_query_inclusive() {
        let t = paper_tree();
        assert_eq!(t.range(&k("10"), &k("10111")), vec![k("10101"), k("10111")]);
        assert_eq!(t.range(&k("0"), &k("1")), vec![k("01")]);
        assert_eq!(
            t.range(&Key::epsilon(), &k("2")),
            vec![k("01"), k("10101"), k("10111"), k("101111")]
        );
        assert!(t.range(&k("11"), &k("2")).is_empty());
    }

    #[test]
    fn completion_matches_prefix() {
        let t = paper_tree();
        assert_eq!(
            t.complete(&k("101")),
            vec![k("10101"), k("10111"), k("101111")]
        );
        assert_eq!(t.complete(&k("10111")), vec![k("10111"), k("101111")]);
        assert_eq!(t.complete(&k("0")), vec![k("01")]);
        assert!(t.complete(&k("2")).is_empty());
        assert_eq!(t.complete(&Key::epsilon()).len(), 4);
    }

    #[test]
    fn remove_cleans_structural_nodes() {
        let mut t = paper_tree();
        assert!(t.remove(&k("10101")));
        t.check_invariants().unwrap();
        // 101 now has a single child chain 10111; it dissolves.
        assert!(!t.labels().contains(&k("101")));
        assert!(t.remove(&k("10111")));
        assert!(t.remove(&k("101111")));
        t.check_invariants().unwrap();
        // Only 01 remains; ε dissolved, root is 01.
        assert_eq!(t.labels(), vec![k("01")]);
        assert!(t.remove(&k("01")));
        assert!(t.is_empty());
        assert!(!t.remove(&k("01")));
    }

    #[test]
    fn depth_counts_edges() {
        assert_eq!(PgcpTrie::new().depth(), 0);
        let t = paper_tree();
        // ε → 101 → 10111 → 101111
        assert_eq!(t.depth(), 3);
    }

    #[test]
    fn render_contains_all_labels() {
        let t = paper_tree();
        let art = t.render();
        for s in ["01", "10101", "10111", "101111"] {
            assert!(art.contains(s), "{art}");
        }
        assert!(art.contains("(ε)"), "structural root in parens: {art}");
    }

    #[test]
    fn invariant_checker_catches_violation() {
        let mut t = paper_tree();
        // Sabotage: move a node's data key.
        let id = t.find(&k("10101")).unwrap();
        t.arena[id].data.insert(k("zzz"));
        assert!(matches!(
            t.check_invariants(),
            Err(TrieViolation::DataLabelMismatch { .. })
        ));
    }

    #[test]
    fn keys_are_sorted_unique() {
        let mut t = PgcpTrie::new();
        for s in ["B", "A", "C", "A", "AB"] {
            t.insert(k(s));
        }
        assert_eq!(t.keys(), vec![k("A"), k("AB"), k("B"), k("C")]);
    }
}

//! Differential property tests of the small-string-optimized [`Key`]
//! against a plain `Vec<u8>` reference model.
//!
//! The SSO refactor changed the *representation* of identifiers (inline
//! buffer up to `KEY_INLINE_CAP` digits, shared heap spill beyond) but
//! must not change any *observable*: ordering, equality, hashing and
//! the prefix algebra are all defined over the digit string alone. The
//! generators here deliberately straddle the inline/spill boundary so
//! every comparison below exercises inline–inline, inline–spill and
//! spill–spill pairs.

use dlpt_core::key::{Key, KEY_INLINE_CAP};
use proptest::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Digit strings from length 0 to well past the inline capacity, over
/// a tiny alphabet so prefix relations are common.
fn digits() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![Just(b'0'), Just(b'1'), Just(b'a')],
        0..(2 * KEY_INLINE_CAP + 4),
    )
}

fn hash_of<T: Hash>(v: &T) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

/// The reference model: every Key operation restated over `Vec<u8>`.
fn model_gcp(a: &[u8], b: &[u8]) -> Vec<u8> {
    let n = a.iter().zip(b).take_while(|(x, y)| x == y).count();
    a[..n].to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Construction round-trips and the repr boundary sits exactly at
    /// `KEY_INLINE_CAP`.
    #[test]
    fn bytes_roundtrip_and_repr_boundary(v in digits()) {
        let k = Key::from_slice(&v);
        prop_assert_eq!(k.as_bytes(), &v[..]);
        prop_assert_eq!(k.len(), v.len());
        prop_assert_eq!(k.is_empty(), v.is_empty());
        prop_assert_eq!(k.is_inline(), v.len() <= KEY_INLINE_CAP);
        // Cloning preserves digits and representation.
        let c = k.clone();
        prop_assert_eq!(c.as_bytes(), &v[..]);
        prop_assert_eq!(c.is_inline(), k.is_inline());
    }

    /// `Ord`/`Eq`/`Hash` agree with the byte-string model across the
    /// inline/spill boundary.
    #[test]
    fn ord_eq_hash_match_model(a in digits(), b in digits()) {
        let (ka, kb) = (Key::from_slice(&a), Key::from_slice(&b));
        prop_assert_eq!(ka.cmp(&kb), a.cmp(&b));
        prop_assert_eq!(ka == kb, a == b);
        if ka == kb {
            prop_assert_eq!(hash_of(&ka), hash_of(&kb), "Eq keys must hash alike");
        }
        // Keys hash exactly like their digit slices, so inline and
        // spilled keys with equal digits always collide.
        prop_assert_eq!(hash_of(&ka), hash_of(&a.as_slice()));
    }

    /// The prefix algebra (`gcp`, `gcp_len`, `is_prefix_of`) matches
    /// the model.
    #[test]
    fn prefix_algebra_matches_model(a in digits(), b in digits()) {
        let (ka, kb) = (Key::from_slice(&a), Key::from_slice(&b));
        prop_assert_eq!(ka.gcp_len(&kb), model_gcp(&a, &b).len());
        prop_assert_eq!(ka.gcp(&kb).as_bytes(), &model_gcp(&a, &b)[..]);
        prop_assert_eq!(ka.is_prefix_of(&kb), b.starts_with(&a));
        prop_assert_eq!(
            ka.is_proper_prefix_of(&kb),
            b.starts_with(&a) && a.len() < b.len()
        );
        prop_assert_eq!(ka.digit_after(&kb), a.get(b.len()).copied());
    }

    /// `concat`/`truncated`/`child` match the model, including results
    /// that cross the inline/spill boundary in either direction.
    #[test]
    fn concat_truncate_match_model(a in digits(), b in digits(), n in 0usize..64) {
        let (ka, kb) = (Key::from_slice(&a), Key::from_slice(&b));
        let mut cat = a.clone();
        cat.extend_from_slice(&b);
        prop_assert_eq!(ka.concat(&kb).as_bytes(), &cat[..]);
        prop_assert_eq!(ka.concat(&kb).is_inline(), cat.len() <= KEY_INLINE_CAP);
        prop_assert_eq!(
            ka.truncated(n).as_bytes(),
            &a[..n.min(a.len())]
        );
        let mut pushed = a.clone();
        pushed.push(b'7');
        prop_assert_eq!(ka.child(b'7').as_bytes(), &pushed[..]);
        // Epsilon is neutral on both sides.
        prop_assert_eq!(Key::epsilon().concat(&ka), ka.clone());
        prop_assert_eq!(ka.concat(&Key::epsilon()), ka);
    }

    /// A spilled key and its inline-rebuilt twin are interchangeable in
    /// ordered collections.
    #[test]
    fn collections_cannot_tell_reprs_apart(vs in proptest::collection::vec(digits(), 1..20)) {
        use std::collections::BTreeSet;
        let direct: BTreeSet<Key> = vs.iter().map(|v| Key::from_slice(v)).collect();
        // Rebuild every key through concat of two halves (exercising
        // different construction paths), expect the identical set.
        let rebuilt: BTreeSet<Key> = vs
            .iter()
            .map(|v| {
                let mid = v.len() / 2;
                Key::from_slice(&v[..mid]).concat(&Key::from_slice(&v[mid..]))
            })
            .collect();
        prop_assert_eq!(direct, rebuilt);
    }
}

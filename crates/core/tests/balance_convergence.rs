//! Convergence of MLT: under a fixed load pattern, repeated boundary
//! renegotiation must reach a fixpoint (no peer can improve its pair
//! throughput), and the fixpoint must dominate the initial placement.
//! The paper treats MLT as a per-unit heuristic and never states this,
//! but without it the heuristic would oscillate.

use dlpt_core::balance::mlt::rebalance_pair;
use dlpt_core::{DlptSystem, Key};

/// Builds a loaded system: heterogeneous peers, skewed node loads.
fn loaded(seed: u64) -> (DlptSystem, Vec<Key>) {
    let mut sys = DlptSystem::builder().seed(seed).peer_id_len(8).build();
    // Capacities 5..41 across 12 peers.
    for i in 0..12 {
        let id = sys.draw_peer_id();
        sys.add_peer_with_id(id, 5 + (i % 4) as u32 * 12).unwrap();
    }
    let keys: Vec<Key> = (0..60).map(|i| Key::from(format!("SVC{i:02}"))).collect();
    for k in &keys {
        sys.insert_data(k.clone()).unwrap();
    }
    (sys, keys)
}

/// Deterministic skewed demand: low-index keys are hot. Node loads
/// count offered demand (including visits peers had to ignore), which
/// is exactly what MLT optimizes over.
fn apply_load(sys: &mut DlptSystem, keys: &[Key]) {
    for (i, k) in keys.iter().enumerate() {
        let weight = if i < 6 { 12 } else { 1 };
        for _ in 0..weight {
            sys.lookup(k);
        }
    }
    sys.end_time_unit();
}

#[test]
fn repeated_rebalancing_reaches_a_fixpoint() {
    let (mut sys, keys) = loaded(71);
    apply_load(&mut sys, &keys);
    let mut rounds = 0usize;
    loop {
        let mut moved = false;
        for id in sys.peer_ids() {
            if sys.shard(&id).is_some() {
                moved |= rebalance_pair(&mut sys, &id);
            }
        }
        sys.check_mapping().unwrap();
        sys.check_ring().unwrap();
        rounds += 1;
        if !moved {
            break;
        }
        assert!(
            rounds < 100,
            "MLT must not oscillate: still moving after {rounds} rounds"
        );
    }
    // At the fixpoint another full pass changes nothing.
    for id in sys.peer_ids() {
        assert!(!rebalance_pair(&mut sys, &id), "fixpoint must be stable");
    }
    sys.check_tree().unwrap();
}

#[test]
fn fixpoint_throughput_dominates_initial_placement() {
    let (mut sys, keys) = loaded(73);
    apply_load(&mut sys, &keys);

    // Hypothetical throughput of a placement: Σ min(load_p, cap_p)
    // using the recorded prev_loads.
    let throughput = |sys: &DlptSystem| -> u64 {
        sys.peer_ids()
            .iter()
            .filter_map(|p| sys.shard(p))
            .map(|s| s.last_unit_load().min(s.peer.capacity as u64))
            .sum()
    };
    let before = throughput(&sys);
    for _ in 0..20 {
        let mut moved = false;
        for id in sys.peer_ids() {
            if sys.shard(&id).is_some() {
                moved |= rebalance_pair(&mut sys, &id);
            }
        }
        if !moved {
            break;
        }
    }
    let after = throughput(&sys);
    assert!(
        after >= before,
        "rebalancing must not lose hypothetical throughput ({before} -> {after})"
    );
    sys.check_mapping().unwrap();
}

#[test]
fn rebalancing_is_deterministic() {
    let run = |seed: u64| -> Vec<(Key, usize)> {
        let (mut sys, keys) = loaded(seed);
        apply_load(&mut sys, &keys);
        for id in sys.peer_ids() {
            if sys.shard(&id).is_some() {
                rebalance_pair(&mut sys, &id);
            }
        }
        sys.peer_ids()
            .into_iter()
            .map(|p| {
                let n = sys.shard(&p).map(|s| s.node_count()).unwrap_or(0);
                (p, n)
            })
            .collect()
    };
    assert_eq!(run(75), run(75));
    assert_ne!(run(75), run(76), "different seeds produce different rings");
}

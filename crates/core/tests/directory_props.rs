//! Property tests of the interned delivery directory (ISSUE 7): the
//! id↔`Key` mapping must stay a bijection and the live-label view must
//! track an ordinary map model under arbitrary insert / remove /
//! re-host / clear churn. Ids are the engine's addressing currency —
//! a broken bijection here silently misroutes envelopes.

use dlpt_core::directory::Directory;
use dlpt_core::key::Key;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Small key pool over a 3-digit alphabet: short keys collide and get
/// re-interned, re-hosted and re-inserted constantly — exactly the
/// churn that would expose id aliasing.
fn pool_key() -> impl Strategy<Value = Key> {
    proptest::collection::vec(prop_oneof![Just(b'0'), Just(b'1'), Just(b'2')], 1..6)
        .prop_map(Key::from_bytes)
}

#[derive(Debug, Clone)]
enum Op {
    Insert(Key, Key),
    Remove(Key),
    BumpEpoch(Key),
    SetFollowers(Key, Vec<Key>),
    Clear,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (pool_key(), pool_key()).prop_map(|(l, h)| Op::Insert(l, h)),
        (pool_key(), pool_key()).prop_map(|(l, h)| Op::Insert(l, h)),
        (pool_key(), pool_key()).prop_map(|(l, h)| Op::Insert(l, h)),
        pool_key().prop_map(Op::Remove),
        pool_key().prop_map(Op::BumpEpoch),
        (pool_key(), proptest::collection::vec(pool_key(), 0..3))
            .prop_map(|(l, f)| Op::SetFollowers(l, f)),
        Just(Op::Clear),
    ]
}

/// Every id ever handed out still names the key it was interned for,
/// and interning that key again yields the same id.
fn assert_bijection(d: &Directory) {
    for id in 0..d.interned_len() as u32 {
        let key = d.key_of(id);
        assert_eq!(
            d.id_of(key),
            Some(id),
            "intern round-trip broke for id {id} ({key})"
        );
    }
}

/// The live view (labels / hosts / resolve / iteration order) agrees
/// with the plain-map model.
fn assert_matches_model(d: &Directory, model: &BTreeMap<Key, Key>) {
    assert_eq!(d.len(), model.len());
    assert_eq!(d.is_empty(), model.is_empty());
    let got: Vec<(&Key, &Key)> = d.iter().collect();
    let want: Vec<(&Key, &Key)> = model.iter().collect();
    assert_eq!(got, want, "live (label, host) view diverged from model");
    for (i, label) in model.keys().enumerate() {
        assert_eq!(d.label_at(i), label);
        assert!(d.contains(label));
        assert_eq!(d.host_of(label), model.get(label));
        let (lid, hid) = d.resolve(label).expect("live label resolves");
        assert_eq!(d.key_of(lid), label, "resolve returned an aliased label id");
        assert_eq!(
            d.key_of(hid),
            &model[label],
            "resolve returned an aliased host id"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// id↔Key bijection and model agreement across arbitrary churn.
    #[test]
    fn directory_stays_a_bijection_under_churn(
        ops in proptest::collection::vec(op(), 1..60),
    ) {
        let mut d = Directory::new();
        let mut model: BTreeMap<Key, Key> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(label, host) => {
                    let lid = d.insert(label.clone(), host.clone());
                    prop_assert_eq!(d.key_of(lid), &label);
                    model.insert(label, host);
                }
                Op::Remove(label) => {
                    let removed = d.remove(&label);
                    prop_assert_eq!(removed, model.remove(&label).is_some());
                    prop_assert_eq!(d.host_of(&label), None);
                }
                Op::BumpEpoch(label) => {
                    let before = d.epoch_of(&label);
                    d.bump_epoch(&label);
                    prop_assert!(d.epoch_of(&label) > before);
                }
                Op::SetFollowers(label, hosts) => {
                    d.set_followers(&label, &hosts);
                    let got: Vec<&Key> = d.followers_of(&label).collect();
                    prop_assert_eq!(got, hosts.iter().collect::<Vec<_>>());
                }
                Op::Clear => {
                    d.clear();
                    model.clear();
                }
            }
            assert_bijection(&d);
            assert_matches_model(&d, &model);
        }
    }

    /// Epochs are monotone per label across any churn — the property
    /// the shortcut cache's freshness proof rests on (no ABA window:
    /// remove + re-insert can never rewind a label's clock).
    #[test]
    fn epochs_are_monotone_per_label(
        ops in proptest::collection::vec(op(), 1..60),
    ) {
        let mut d = Directory::new();
        let mut floor: BTreeMap<Key, u64> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(label, host) => {
                    d.insert(label.clone(), host);
                    let e = d.epoch_of(&label);
                    prop_assert!(e > *floor.get(&label).unwrap_or(&0));
                    floor.insert(label, e);
                }
                Op::Remove(label) => {
                    let was_live = d.contains(&label);
                    d.remove(&label);
                    let e = d.epoch_of(&label);
                    if was_live {
                        prop_assert!(e > *floor.get(&label).unwrap_or(&0));
                    }
                    floor.insert(label, e);
                }
                Op::BumpEpoch(label) => {
                    d.bump_epoch(&label);
                    floor.insert(label.clone(), d.epoch_of(&label));
                }
                Op::SetFollowers(label, hosts) => d.set_followers(&label, &hosts),
                Op::Clear => {
                    // Clear bumps every live label's epoch.
                    let live: Vec<Key> = d.labels().cloned().collect();
                    d.clear();
                    for l in live {
                        floor.insert(l.clone(), d.epoch_of(&l));
                    }
                }
            }
            for (label, &e) in &floor {
                prop_assert!(
                    d.epoch_of(label) >= e,
                    "epoch of {} rewound below {}",
                    label,
                    e
                );
            }
        }
    }
}

//! Property tests of the sequential PGCP oracle and the key algebra —
//! the foundations everything else is checked against.

use dlpt_core::alphabet::Alphabet;
use dlpt_core::key::{in_ring_interval, Key};
use dlpt_core::trie::PgcpTrie;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn short_key() -> impl Strategy<Value = Key> {
    proptest::collection::vec(prop_oneof![Just(b'0'), Just(b'1'), Just(b'2')], 1..8)
        .prop_map(Key::from_bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Insert order never changes the resulting tree.
    #[test]
    fn trie_is_insert_order_invariant(keys in proptest::collection::vec(short_key(), 1..25), rot in 0usize..25) {
        let mut a = PgcpTrie::new();
        for k in &keys {
            a.insert(k.clone());
        }
        let mut rotated = keys.clone();
        rotated.rotate_left(rot % keys.len());
        let mut b = PgcpTrie::new();
        for k in &rotated {
            b.insert(k.clone());
        }
        prop_assert_eq!(a.labels(), b.labels());
        prop_assert!(a.check_invariants().is_ok());
    }

    /// Insert/remove sequences behave like a set, and the tree stays
    /// canonical (structural nodes dissolve with their need).
    #[test]
    fn trie_insert_remove_is_a_set(ops in proptest::collection::vec((short_key(), any::<bool>()), 1..40)) {
        let mut t = PgcpTrie::new();
        let mut model: BTreeSet<Key> = BTreeSet::new();
        for (k, insert) in ops {
            if insert {
                t.insert(k.clone());
                model.insert(k);
            } else {
                let removed = t.remove(&k);
                prop_assert_eq!(removed, model.remove(&k));
            }
            prop_assert!(t.check_invariants().is_ok());
        }
        prop_assert_eq!(t.keys(), model.iter().cloned().collect::<Vec<_>>());
        // Canonical shape: rebuilding from the surviving keys gives
        // the identical label set.
        let mut rebuilt = PgcpTrie::new();
        for k in &model {
            rebuilt.insert(k.clone());
        }
        prop_assert_eq!(t.labels(), rebuilt.labels());
    }

    /// Range and completion agree with plain filters.
    #[test]
    fn trie_queries_agree_with_filters(
        keys in proptest::collection::vec(short_key(), 1..25),
        a in short_key(),
        b in short_key(),
    ) {
        let (lo, hi) = if a <= b { (a.clone(), b) } else { (b, a.clone()) };
        let mut t = PgcpTrie::new();
        let mut model = BTreeSet::new();
        for k in keys {
            t.insert(k.clone());
            model.insert(k);
        }
        let want_range: Vec<Key> = model.iter().filter(|k| **k >= lo && **k <= hi).cloned().collect();
        prop_assert_eq!(t.range(&lo, &hi), want_range);
        let want_complete: Vec<Key> = model.iter().filter(|k| a.is_prefix_of(k)).cloned().collect();
        prop_assert_eq!(t.complete(&a), want_complete);
    }

    /// Node count is bounded by 2·|keys| − 1 (each insertion creates
    /// at most one structural node beyond the key's own).
    #[test]
    fn trie_size_bound(keys in proptest::collection::btree_set(short_key(), 1..30)) {
        let mut t = PgcpTrie::new();
        for k in &keys {
            t.insert(k.clone());
        }
        prop_assert!(t.node_count() < 2 * keys.len(),
            "{} nodes for {} keys", t.node_count(), keys.len());
        prop_assert_eq!(t.key_count(), keys.len());
    }

    /// Lookup from any entry node terminates at the same verdict as
    /// lookup from the root.
    #[test]
    fn lookup_entry_invariance(
        keys in proptest::collection::btree_set(short_key(), 1..20),
        probe in short_key(),
        entry_choice in any::<u32>(),
    ) {
        let mut t = PgcpTrie::new();
        for k in &keys {
            t.insert(k.clone());
        }
        let labels = t.labels();
        let entry_label = &labels[entry_choice as usize % labels.len()];
        let entry = t.find(entry_label).unwrap();
        prop_assert_eq!(t.lookup_from(entry, &probe).found, t.lookup(&probe).found);
    }

    /// `id_between` really produces strictly-between identifiers
    /// whenever it claims to.
    #[test]
    fn id_between_is_between(a in short_key(), b in short_key()) {
        let alphabet = Alphabet::new(b"012", "test");
        if let Some(mid) = alphabet.id_between(&a, &b) {
            prop_assert!(a < mid && mid < b, "{a} < {mid} < {b}");
            prop_assert!(alphabet.validate(&mid).is_ok());
        }
    }

    /// Ring arcs over any four distinct points partition the circle.
    #[test]
    fn four_arc_partition(ids in proptest::collection::btree_set(short_key(), 4..5), x in short_key()) {
        let v: Vec<Key> = ids.into_iter().collect();
        let arcs = [(&v[3], &v[0]), (&v[0], &v[1]), (&v[1], &v[2]), (&v[2], &v[3])];
        let hits = arcs.iter().filter(|(a, b)| in_ring_interval(&x, a, b)).count();
        prop_assert_eq!(hits, 1);
    }
}

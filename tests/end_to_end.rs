//! Cross-crate integration: the three runtimes (synchronous pump,
//! latency simulator, threaded live network) must all build the same
//! tree the sequential oracle predicts, and discovery must agree with
//! it on every query kind.

use dlpt::core::{Alphabet, DlptSystem, Key, PgcpTrie};
use dlpt::net::{LatencyModel, LatencyNet, ThreadedDlpt};
use dlpt::workloads::corpus::Corpus;

fn sample_corpus(n: usize) -> Vec<Key> {
    Corpus::grid().take_spread(n)
}

#[test]
fn synchronous_runtime_matches_oracle_on_real_corpus() {
    let keys = sample_corpus(300);
    let mut sys = DlptSystem::builder().seed(11).bootstrap_peers(20).build();
    let mut oracle = PgcpTrie::new();
    for k in &keys {
        sys.insert_data(k.clone()).unwrap();
        oracle.insert(k.clone());
    }
    assert_eq!(sys.node_labels(), oracle.labels());
    sys.check_tree().unwrap();
    sys.check_mapping().unwrap();
    sys.check_ring().unwrap();
}

#[test]
fn all_three_runtimes_converge_to_the_same_tree() {
    let keys = sample_corpus(80);

    let mut sys = DlptSystem::builder().seed(5).bootstrap_peers(8).build();
    for k in &keys {
        sys.insert_data(k.clone()).unwrap();
    }

    let mut latency = LatencyNet::new(LatencyModel::Uniform(1, 40), 6);
    let alphabet = Alphabet::grid();
    {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for _ in 0..8 {
            let id: Key = alphabet.random_id(&mut rng, 12);
            let _ = rng.gen_range(0..10); // decorrelate ids
            latency.add_peer(id);
        }
    }
    for k in &keys {
        latency.insert_data(k.clone());
    }

    let mut live = ThreadedDlpt::new(Alphabet::grid(), 8);
    for _ in 0..8 {
        live.add_peer();
    }
    for k in &keys {
        live.insert_data(k.clone());
    }

    assert_eq!(sys.node_labels(), latency.node_labels());
    assert_eq!(sys.node_labels(), live.node_labels());
    live.shutdown();
}

#[test]
fn discovery_agrees_with_oracle_on_all_query_kinds() {
    let keys = sample_corpus(200);
    let mut sys = DlptSystem::builder().seed(13).bootstrap_peers(16).build();
    let mut oracle = PgcpTrie::new();
    for k in &keys {
        sys.insert_data(k.clone()).unwrap();
        oracle.insert(k.clone());
    }

    // Exact lookups: every registered key found, absent keys not.
    for k in keys.iter().step_by(7) {
        let out = sys.lookup(k);
        assert!(out.satisfied, "{k}");
        assert_eq!(out.results, vec![k.clone()]);
    }
    assert!(!sys.lookup(&Key::from("NO_SUCH_SERVICE")).found);

    // Completions match the oracle for a spread of prefixes.
    for prefix in ["S3L", "D", "DGE", "P", "PS", "ZTR", "QQQ"] {
        let p = Key::from(prefix);
        let got = sys.complete(&p).results;
        let want = oracle.complete(&p);
        assert_eq!(got, want, "complete({prefix})");
    }

    // Ranges match the oracle.
    for (lo, hi) in [
        ("A", "E"),
        ("DGEMM", "DTRSM"),
        ("S3L_a", "S3L_z"),
        ("Z", "ZZ"),
    ] {
        let (lo, hi) = (Key::from(lo), Key::from(hi));
        let got = sys.range(&lo, &hi).results;
        let want = oracle.range(&lo, &hi);
        assert_eq!(got, want, "range({lo}, {hi})");
    }
}

#[test]
fn peers_joining_between_insertions_keep_everything_consistent() {
    let keys = sample_corpus(120);
    let mut sys = DlptSystem::builder().seed(17).bootstrap_peers(3).build();
    for (i, k) in keys.iter().enumerate() {
        sys.insert_data(k.clone()).unwrap();
        if i % 10 == 9 {
            sys.add_peer(1_000_000).unwrap();
            sys.check_mapping().unwrap();
            sys.check_ring().unwrap();
        }
    }
    sys.check_tree().unwrap();
    assert_eq!(sys.peer_count(), 15);
    let oracle: PgcpTrie = {
        let mut t = PgcpTrie::new();
        for k in &keys {
            t.insert(k.clone());
        }
        t
    };
    assert_eq!(sys.node_labels(), oracle.labels());
}

#[test]
fn interleaved_churn_insert_query_stress() {
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(23);
    let keys = sample_corpus(150);
    let mut sys = DlptSystem::builder().seed(23).bootstrap_peers(10).build();
    let mut registered: Vec<Key> = Vec::new();
    let mut next = 0usize;
    for step in 0..400 {
        match rng.gen_range(0..10) {
            0 => {
                sys.add_peer(1_000_000).unwrap();
            }
            1 if sys.peer_count() > 4 => {
                let ids = sys.peer_ids();
                let victim = ids.choose(&mut rng).unwrap().clone();
                sys.leave_peer(&victim).unwrap();
            }
            2..=5 if next < keys.len() => {
                sys.insert_data(keys[next].clone()).unwrap();
                registered.push(keys[next].clone());
                next += 1;
            }
            _ if !registered.is_empty() => {
                let probe = registered.choose(&mut rng).unwrap();
                assert!(sys.lookup(probe).satisfied, "step {step}: {probe}");
            }
            _ => {}
        }
        if step % 50 == 49 {
            sys.check_tree().unwrap();
            sys.check_mapping().unwrap();
            sys.check_ring().unwrap();
        }
    }
    // Final full audit.
    sys.check_tree().unwrap();
    sys.check_mapping().unwrap();
    for k in &registered {
        sys.end_time_unit();
        assert!(sys.lookup(k).satisfied, "{k}");
    }
}

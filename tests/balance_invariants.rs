//! Long-run behaviour of the load balancers: invariants hold across
//! many units of load + churn, and the paper's headline orderings
//! (MLT ≥ KC ≥ no-LB in steady-state satisfaction) emerge on fixed
//! seeds at test scale.

use dlpt::sim::config::{CorpusKind, ExperimentConfig, LbKind, PopKind};
use dlpt::sim::runner::run_experiment;
use dlpt::workloads::churn::ChurnModel;

fn test_config(lb: LbKind, churn: ChurnModel, seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        name: format!("test-{}", lb.label()),
        peers: 30,
        corpus: CorpusKind::GridSubset(200),
        time_units: 25,
        growth_units: 5,
        load: 0.16,
        route_cost: 9.0,
        base_capacity: 10,
        capacity_ratio: 4,
        churn,
        lb,
        popularity: PopKind::Uniform,
        runs: 6,
        base_seed: seed,
        peer_id_len: 10,
        track_mapping_hops: false,
        replication: 1,
        anti_entropy: false,
        cache_capacity: 0,
        track_depth_hist: false,
        workers: 1,
        loss_rate: 0.0,
        dup_rate: 0.0,
        partition: None,
        health_snapshots: false,
    }
}

#[test]
fn mlt_beats_no_balancing_on_stable_network() {
    let mlt = run_experiment(&test_config(
        LbKind::Mlt { fraction: 1.0 },
        ChurnModel::stable(),
        100,
    ));
    let none = run_experiment(&test_config(LbKind::None, ChurnModel::stable(), 100));
    assert!(
        mlt.steady_satisfaction() > none.steady_satisfaction() * 1.2,
        "MLT {:.1}% must clearly beat no-LB {:.1}%",
        mlt.steady_satisfaction(),
        none.steady_satisfaction()
    );
}

#[test]
fn kc_beats_no_balancing_under_churn() {
    let kc = run_experiment(&test_config(
        LbKind::Kc { k: 4 },
        ChurnModel::dynamic(),
        200,
    ));
    let none = run_experiment(&test_config(LbKind::None, ChurnModel::dynamic(), 200));
    assert!(
        kc.steady_satisfaction() > none.steady_satisfaction(),
        "KC {:.1}% must beat no-LB {:.1}% on a dynamic network",
        kc.steady_satisfaction(),
        none.steady_satisfaction()
    );
}

#[test]
fn mlt_reduces_physical_hops_versus_random_mapping() {
    // Figure 9's ordering at test scale.
    let mut cfg = test_config(LbKind::Mlt { fraction: 1.0 }, ChurnModel::stable(), 300);
    cfg.track_mapping_hops = true;
    let s = run_experiment(&cfg);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (logical, lexico, random) = (
        mean(&s.logical_hops),
        mean(&s.physical_lexico),
        mean(&s.physical_random),
    );
    assert!(
        lexico < random / 1.5,
        "lexicographic mapping ({lexico:.2}) must stay well below random ({random:.2})"
    );
    assert!(
        random <= logical + 0.5,
        "random-mapping physical hops ({random:.2}) cannot exceed logical ({logical:.2})"
    );
}

#[test]
fn hotspot_burst_dips_then_recovers_with_mlt() {
    let mut cfg = test_config(LbKind::Mlt { fraction: 1.0 }, ChurnModel::stable(), 400);
    cfg.time_units = 80;
    cfg.growth_units = 5;
    cfg.popularity = PopKind::Figure8 { hot_fraction: 0.9 };
    let s = run_experiment(&cfg);
    let mean = |from: usize, to: usize| -> f64 {
        s.satisfaction[from..to].iter().sum::<f64>() / (to - from) as f64
    };
    let uniform = mean(20, 40);
    let burst_start = mean(40, 46);
    let burst_end = mean(68, 80);
    assert!(
        burst_start < uniform,
        "the S3L burst must dent satisfaction ({burst_start:.1} vs {uniform:.1})"
    );
    assert!(
        burst_end > burst_start,
        "MLT must adapt within the burst phase ({burst_start:.1} -> {burst_end:.1})"
    );
}

#[test]
fn balancers_never_violate_invariants_under_combined_stress() {
    // One run each, invariants checked inside the run via the system's
    // debug assertions; here we assert the runs complete and produce
    // sane series.
    for lb in [
        LbKind::Mlt { fraction: 0.5 },
        LbKind::Kc { k: 4 },
        LbKind::None,
    ] {
        let mut cfg = test_config(lb, ChurnModel::dynamic(), 500);
        cfg.runs = 2;
        cfg.popularity = PopKind::Zipf(1.1);
        let s = run_experiment(&cfg);
        assert_eq!(s.satisfaction.len(), 25);
        for (t, v) in s.satisfaction.iter().enumerate() {
            assert!((0.0..=100.0).contains(v), "unit {t}: {v}");
        }
        assert!(s.steady_issued > 0.0);
    }
}

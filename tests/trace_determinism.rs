//! Trace determinism: the observability subsystem's exported event
//! stream is a pure function of `(config, seed, operation sequence)` —
//! including across the parallel pump's worker merge. Two identical
//! traced runs must serialize to byte-identical JSONL and
//! chrome://tracing dumps, which is what lets CI diff two seeded
//! `perf --smoke --trace` runs.

use dlpt::core::messages::QueryKind;
use dlpt::core::obs::{write_chrome_trace, write_jsonl};
use dlpt::core::{Alphabet, DlptSystem, Key, TraceEvent};

const KEYS: [&str; 10] = [
    "DGEMM", "DGEMV", "DTRSM", "SGEMM", "SGEMV", "S3L_fft", "S3L_sort", "PSGESV", "PDGEMM", "CAXPY",
];

/// One traced workload: sequential requests, then a 3-worker parallel
/// batch, so the stream crosses both the sequential stamping path and
/// the `(round, worker, seq)` merge.
fn traced_run(seed: u64) -> Vec<TraceEvent> {
    let mut sys = DlptSystem::builder()
        .alphabet(Alphabet::grid())
        .seed(seed)
        .peer_id_len(12)
        .bootstrap_peers(8)
        .build();
    for k in &KEYS {
        sys.insert_data(*k).unwrap();
    }
    sys.set_tracing(1 << 12);
    for k in ["DGEMM", "S3L_fft", "MISSING"] {
        sys.lookup(&Key::from(k));
    }
    sys.request(QueryKind::Complete(Key::from("S3L"))).unwrap();
    let queries: Vec<QueryKind> = KEYS
        .iter()
        .map(|k| QueryKind::Exact(Key::from(*k)))
        .collect();
    sys.discover_batch(queries, 3).expect("parallel batch");
    sys.take_trace()
}

#[test]
fn traced_runs_serialize_byte_identically_across_repeats() {
    let a = traced_run(42);
    let b = traced_run(42);
    assert!(!a.is_empty(), "the traced workload must capture events");
    assert_eq!(a, b, "event streams diverged across identical runs");

    let dump = |events: &[TraceEvent]| {
        let mut jsonl = Vec::new();
        write_jsonl(events, &mut jsonl).unwrap();
        let mut chrome = Vec::new();
        write_chrome_trace(events, &mut chrome).unwrap();
        (jsonl, chrome)
    };
    let (jsonl_a, chrome_a) = dump(&a);
    let (jsonl_b, chrome_b) = dump(&b);
    assert_eq!(jsonl_a, jsonl_b, "JSONL dumps diverged");
    assert_eq!(chrome_a, chrome_b, "chrome trace dumps diverged");
    assert!(jsonl_a.ends_with(b"\n"), "JSONL must be newline-terminated");
}

#[test]
fn take_trace_drains_the_ring() {
    let mut sys = DlptSystem::builder()
        .alphabet(Alphabet::grid())
        .seed(7)
        .peer_id_len(12)
        .bootstrap_peers(4)
        .build();
    sys.insert_data("DGEMM").unwrap();
    sys.set_tracing(64);
    sys.lookup(&Key::from("DGEMM"));
    let first = sys.take_trace();
    assert!(!first.is_empty());
    assert!(
        sys.take_trace().is_empty(),
        "a second drain without new work must be empty"
    );
    // The seq counter keeps climbing across drains: a later event can
    // never collide with (or sort before) an already-drained one
    // within the same (round, worker) group.
    sys.lookup(&Key::from("DGEMM"));
    let second = sys.take_trace();
    let max_first = first.iter().map(|e| e.seq).max().unwrap();
    assert!(
        second.iter().all(|e| e.seq > max_first),
        "post-drain events must continue the sequence, not restart it"
    );
}

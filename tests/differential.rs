//! Differential property test: arbitrary insert/remove/lookup
//! sequences are driven simultaneously through the sequential
//! [`PgcpTrie`] oracle and the distributed [`DlptSystem`], and every
//! discovery outcome must agree — the distributed protocol may never
//! find more, less, or different data than the in-memory trie.

use dlpt::core::{Alphabet, DlptSystem, Key, PgcpTrie};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Short binary keys: dense prefix relations, maximal collision
/// coverage between inserts, removals and probes.
fn binary_key() -> impl Strategy<Value = Key> {
    proptest::collection::vec(prop_oneof![Just(b'0'), Just(b'1')], 1..8).prop_map(Key::from_bytes)
}

#[derive(Debug, Clone, Copy)]
enum OpKind {
    Insert,
    Remove,
    Lookup,
}

fn op_kind() -> impl Strategy<Value = OpKind> {
    prop_oneof![
        Just(OpKind::Insert),
        Just(OpKind::Insert), // bias toward growth so trees get interesting
        Just(OpKind::Remove),
        Just(OpKind::Lookup),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every lookup agrees with the oracle at the moment it runs, and
    /// the final overlay equals the oracle of the surviving key set.
    #[test]
    fn random_sequences_keep_system_and_oracle_in_lockstep(
        ops in proptest::collection::vec((binary_key(), op_kind()), 1..40),
        seed in 0u64..1000,
        peers in 1usize..6,
    ) {
        let mut sys = DlptSystem::builder()
            .alphabet(Alphabet::binary())
            .seed(seed)
            .peer_id_len(12)
            .bootstrap_peers(peers)
            .build();
        let mut oracle = PgcpTrie::new();
        let mut live: BTreeSet<Key> = BTreeSet::new();

        for (key, op) in ops {
            match op {
                OpKind::Insert => {
                    sys.insert_data(key.clone()).unwrap();
                    oracle.insert(key.clone());
                    live.insert(key);
                }
                OpKind::Remove => {
                    sys.remove_data(&key).unwrap();
                    oracle.remove(&key);
                    live.remove(&key);
                }
                OpKind::Lookup => {
                    let out = sys.lookup(&key);
                    prop_assert_eq!(
                        out.found,
                        oracle.contains(&key),
                        "lookup {:?} disagrees with oracle", key
                    );
                    if out.found {
                        prop_assert!(out.satisfied, "found but unsatisfied: {:?}", key);
                        prop_assert_eq!(out.results, vec![key.clone()]);
                    }
                }
            }
            prop_assert!(oracle.check_invariants().is_ok());
        }

        // Final state: identical trees, identical membership.
        prop_assert_eq!(sys.node_labels(), oracle.labels());
        prop_assert_eq!(
            sys.registered_keys(),
            live.iter().cloned().collect::<Vec<_>>()
        );
        prop_assert!(sys.check_tree().is_ok());
        prop_assert!(sys.check_mapping().is_ok());
        for k in &live {
            prop_assert!(sys.lookup(k).satisfied, "live key {:?} lost", k);
        }
    }

    /// Range and completion queries agree with brute-force filters of
    /// the oracle's key set at arbitrary interleaving points.
    #[test]
    fn region_queries_agree_with_oracle_filters(
        inserts in proptest::collection::vec(binary_key(), 1..25),
        removes in proptest::collection::vec(binary_key(), 0..10),
        lo in binary_key(),
        hi in binary_key(),
        prefix in binary_key(),
        seed in 0u64..500,
    ) {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let mut sys = DlptSystem::builder()
            .alphabet(Alphabet::binary())
            .seed(seed)
            .peer_id_len(12)
            .bootstrap_peers(3)
            .build();
        let mut live: BTreeSet<Key> = BTreeSet::new();
        for k in inserts {
            sys.insert_data(k.clone()).unwrap();
            live.insert(k);
        }
        for k in removes {
            sys.remove_data(&k).unwrap();
            live.remove(&k);
        }
        let got = sys.range(&lo, &hi).results;
        let want: Vec<Key> = live.iter().filter(|k| **k >= lo && **k <= hi).cloned().collect();
        prop_assert_eq!(got, want, "range [{:?}, {:?}]", lo, hi);

        let got = sys.complete(&prefix).results;
        let want: Vec<Key> = live.iter().filter(|k| prefix.is_prefix_of(k)).cloned().collect();
        prop_assert_eq!(got, want, "complete {:?}", prefix);
    }
}

//! Property-based tests over the core invariants.
//!
//! The distributed overlay is checked against the sequential oracle
//! for arbitrary key sets and operation interleavings; the MLT sweep
//! against exhaustive search; the wire codec against roundtrips.

use dlpt::core::balance::mlt::best_split;
use dlpt::core::messages::{Envelope, NodeMsg, QueryKind};
use dlpt::core::{Alphabet, DlptSystem, Key, PgcpTrie};
use dlpt::net::codec;
use proptest::prelude::*;

/// Short binary keys: dense prefix relations, maximal case coverage.
fn binary_key() -> impl Strategy<Value = Key> {
    proptest::collection::vec(prop_oneof![Just(b'0'), Just(b'1')], 1..10).prop_map(Key::from_bytes)
}

fn binary_keys(max: usize) -> impl Strategy<Value = Vec<Key>> {
    proptest::collection::vec(binary_key(), 1..max)
}

fn binary_system(seed: u64, peers: usize) -> DlptSystem {
    DlptSystem::builder()
        .alphabet(Alphabet::binary())
        .seed(seed)
        .peer_id_len(12)
        .bootstrap_peers(peers)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The oracle itself satisfies Definition 1 for any key set, and
    /// membership matches the input.
    #[test]
    fn oracle_invariant_holds_for_any_keys(keys in binary_keys(40)) {
        let mut t = PgcpTrie::new();
        for k in &keys {
            t.insert(k.clone());
        }
        prop_assert!(t.check_invariants().is_ok());
        for k in &keys {
            prop_assert!(t.contains(k));
        }
        let mut want: Vec<Key> = keys.clone();
        want.sort();
        want.dedup();
        prop_assert_eq!(t.keys(), want);
    }

    /// The distributed tree converges to exactly the oracle's labels,
    /// for any key set, any entry-point randomness and any peer count.
    #[test]
    fn distributed_tree_matches_oracle(keys in binary_keys(30), seed in 0u64..1000, peers in 1usize..8) {
        let mut sys = binary_system(seed, peers);
        let mut oracle = PgcpTrie::new();
        for k in &keys {
            sys.insert_data(k.clone()).unwrap();
            oracle.insert(k.clone());
        }
        prop_assert_eq!(sys.node_labels(), oracle.labels());
        prop_assert!(sys.check_tree().is_ok());
        prop_assert!(sys.check_mapping().is_ok());
    }

    /// Exact lookups find precisely the registered keys.
    #[test]
    fn lookup_completeness_and_soundness(keys in binary_keys(25), probe in binary_key(), seed in 0u64..500) {
        let mut sys = binary_system(seed, 4);
        for k in &keys {
            sys.insert_data(k.clone()).unwrap();
        }
        for k in &keys {
            prop_assert!(sys.lookup(k).satisfied);
        }
        let out = sys.lookup(&probe);
        prop_assert_eq!(out.found, keys.contains(&probe));
    }

    /// Range queries equal a plain filter of the key set.
    #[test]
    fn range_equals_filter(keys in binary_keys(25), a in binary_key(), b in binary_key(), seed in 0u64..500) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mut sys = binary_system(seed, 4);
        for k in &keys {
            sys.insert_data(k.clone()).unwrap();
        }
        let got = sys.range(&lo, &hi).results;
        let mut want: Vec<Key> = keys.iter().filter(|k| **k >= lo && **k <= hi).cloned().collect();
        want.sort();
        want.dedup();
        prop_assert_eq!(got, want);
    }

    /// Completion equals a prefix filter of the key set.
    #[test]
    fn completion_equals_prefix_filter(keys in binary_keys(25), prefix in binary_key(), seed in 0u64..500) {
        let mut sys = binary_system(seed, 4);
        for k in &keys {
            sys.insert_data(k.clone()).unwrap();
        }
        let got = sys.complete(&prefix).results;
        let mut want: Vec<Key> = keys.iter().filter(|k| prefix.is_prefix_of(k)).cloned().collect();
        want.sort();
        want.dedup();
        prop_assert_eq!(got, want);
    }

    /// After any join/leave sequence the mapping rule and ring links
    /// hold and every key stays discoverable.
    #[test]
    fn churn_preserves_invariants(
        keys in binary_keys(15),
        ops in proptest::collection::vec(0u8..2, 1..12),
        seed in 0u64..500,
    ) {
        let mut sys = binary_system(seed, 3);
        for k in &keys {
            sys.insert_data(k.clone()).unwrap();
        }
        for op in ops {
            match op {
                0 => { sys.add_peer(1_000_000).unwrap(); }
                _ if sys.peer_count() > 1 => {
                    let victim = sys.peer_ids()[0].clone();
                    sys.leave_peer(&victim).unwrap();
                }
                _ => {}
            }
            prop_assert!(sys.check_mapping().is_ok());
            prop_assert!(sys.check_ring().is_ok());
        }
        prop_assert!(sys.check_tree().is_ok());
        for k in &keys {
            prop_assert!(sys.lookup(k).satisfied);
        }
    }

    /// The MLT sweep finds the true optimum (checked exhaustively) for
    /// arbitrary loads and capacities.
    #[test]
    fn mlt_sweep_is_optimal(
        loads in proptest::collection::vec(0u64..50, 1..14),
        cap_p in 1u64..100,
        cap_s in 1u64..100,
        current_frac in 0.0f64..1.0,
    ) {
        let current = ((loads.len() as f64) * current_frac) as usize;
        let eval = best_split(&loads, cap_p, cap_s, current);
        let total: u64 = loads.iter().sum();
        let best_naive = (0..=loads.len())
            .map(|i| {
                let pre: u64 = loads[..i].iter().sum();
                pre.min(cap_p) + (total - pre).min(cap_s)
            })
            .max()
            .unwrap();
        prop_assert_eq!(eval.throughput, best_naive);
        // And the reported split really achieves it.
        let pre: u64 = loads[..eval.split].iter().sum();
        prop_assert_eq!(pre.min(cap_p) + (total - pre).min(cap_s), eval.throughput);
    }

    /// Arbitrary interleavings of insertions and removals leave the
    /// overlay equal to the oracle of the surviving key set — the
    /// removal protocol's dissolution mirrors `PgcpTrie::remove`.
    #[test]
    fn insert_remove_sequences_match_oracle(
        ops in proptest::collection::vec((binary_key(), any::<bool>()), 1..30),
        seed in 0u64..500,
    ) {
        let mut sys = binary_system(seed, 4);
        let mut live: std::collections::BTreeSet<Key> = Default::default();
        for (key, insert) in ops {
            if insert {
                sys.insert_data(key.clone()).unwrap();
                live.insert(key);
            } else {
                sys.remove_data(&key).unwrap();
                live.remove(&key);
            }
        }
        let mut oracle = PgcpTrie::new();
        for k in &live {
            oracle.insert(k.clone());
        }
        prop_assert_eq!(sys.node_labels(), oracle.labels());
        prop_assert!(sys.check_tree().is_ok());
        prop_assert!(sys.check_mapping().is_ok());
        for k in &live {
            prop_assert!(sys.lookup(k).satisfied);
        }
    }

    /// The wire codec roundtrips arbitrary discovery envelopes.
    #[test]
    fn codec_roundtrips_arbitrary_envelopes(
        to in binary_key(),
        key in binary_key(),
        path in proptest::collection::vec(binary_key(), 0..6),
        request in any::<u64>(),
    ) {
        use dlpt::core::messages::{DiscoveryMsg, RoutePhase};
        let env = Envelope::to_node(
            to,
            NodeMsg::Discovery(DiscoveryMsg {
                request_id: request,
                query: QueryKind::Exact(key),
                phase: RoutePhase::Down,
                path,
            }),
        );
        let frame = codec::encode(&env);
        prop_assert_eq!(codec::decode(&frame).unwrap(), env);
    }

    /// GCP algebra: commutative, associative-compatible, and the GCP
    /// is the longest common prefix.
    #[test]
    fn gcp_algebra(a in binary_key(), b in binary_key()) {
        let g = a.gcp(&b);
        prop_assert_eq!(g.clone(), b.gcp(&a));
        prop_assert!(g.is_prefix_of(&a));
        prop_assert!(g.is_prefix_of(&b));
        // Maximality: one digit longer is no longer common.
        if g.len() < a.len() && g.len() < b.len() {
            prop_assert_ne!(a.as_bytes()[g.len()], b.as_bytes()[g.len()]);
        }
    }

    /// Ring-interval membership is a partition: for peers a < b < c on
    /// a circle, every x is in exactly one adjacent arc.
    #[test]
    fn ring_arcs_partition(mut ids in proptest::collection::btree_set(binary_key(), 3..3+1), x in binary_key()) {
        use dlpt::core::key::in_ring_interval;
        let v: Vec<Key> = std::mem::take(&mut ids).into_iter().collect();
        let arcs = [(&v[2], &v[0]), (&v[0], &v[1]), (&v[1], &v[2])];
        let hits = arcs
            .iter()
            .filter(|(a, b)| in_ring_interval(&x, a, b))
            .count();
        prop_assert_eq!(hits, 1, "x={:?} arcs over {:?}", x, v);
    }
}

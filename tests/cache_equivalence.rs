//! Cached-vs-uncached oracle equivalence: the routing-shortcut cache
//! (`dlpt-core::cache`) may change the *route* a discovery takes, but
//! never its *result*. A cached system and an uncached system driven
//! by the same seed and the same operation sequence must agree on
//! every lookup outcome — under arbitrary interleavings of
//! registrations, removals, churn and balancer migrations, all of
//! which create stale shortcuts that the epoch check must catch.

use dlpt::core::{Alphabet, DlptSystem, FaultPlan, Key, QueryKind};
use proptest::prelude::*;

/// Very short binary keys: dense prefix relations and frequent
/// repeats, so caches actually heat up and removals actually collide
/// with warm entries.
fn hot_key() -> impl Strategy<Value = Key> {
    proptest::collection::vec(prop_oneof![Just(b'0'), Just(b'1')], 1..5).prop_map(Key::from_bytes)
}

/// One step of the interleaved workload.
#[derive(Debug, Clone)]
enum Op {
    Insert(Key),
    Remove(Key),
    Lookup(Key),
    AddPeer,
    LeavePeer(usize),
    /// Migrate the `i`-th node label to the `j`-th peer (the balancer
    /// move that stales cached hosts without dissolving the label).
    Migrate(usize, usize),
}

fn op() -> impl Strategy<Value = Op> {
    // The vendored proptest subset has no weighted prop_oneof;
    // duplication supplies the weighting (lookup-heavy, so caches
    // actually heat up between the mutations).
    prop_oneof![
        hot_key().prop_map(Op::Insert),
        hot_key().prop_map(Op::Insert),
        hot_key().prop_map(Op::Remove),
        hot_key().prop_map(Op::Lookup),
        hot_key().prop_map(Op::Lookup),
        hot_key().prop_map(Op::Lookup),
        hot_key().prop_map(Op::Lookup),
        hot_key().prop_map(Op::Lookup),
        Just(Op::AddPeer),
        any::<usize>().prop_map(Op::LeavePeer),
        (any::<usize>(), any::<usize>()).prop_map(|(i, j)| Op::Migrate(i, j)),
        (any::<usize>(), any::<usize>()).prop_map(|(i, j)| Op::Migrate(i, j)),
    ]
}

fn system(seed: u64, cache: usize) -> DlptSystem {
    DlptSystem::builder()
        .alphabet(Alphabet::binary())
        .seed(seed)
        .peer_id_len(12)
        .cache_capacity(cache)
        .bootstrap_peers(4)
        .build()
}

/// Applies one op to a system. Lookup results are returned for
/// comparison; every other op returns `None`.
fn apply(sys: &mut DlptSystem, op: &Op) -> Option<(bool, bool, Vec<Key>)> {
    match op {
        Op::Insert(k) => {
            sys.insert_data(k.clone()).expect("ring non-empty");
            None
        }
        Op::Remove(k) => {
            sys.remove_data(k).expect("ring non-empty");
            None
        }
        Op::Lookup(k) => {
            let out = sys.lookup(k);
            Some((out.satisfied, out.found, out.results))
        }
        Op::AddPeer => {
            sys.add_peer(1_000_000).expect("fresh id");
            None
        }
        Op::LeavePeer(i) => {
            if sys.peer_count() > 1 {
                let ids = sys.peer_ids();
                let victim = ids[i % ids.len()].clone();
                sys.leave_peer(&victim).expect("victim is live");
            }
            None
        }
        Op::Migrate(i, j) => {
            let labels = sys.node_labels();
            if labels.is_empty() {
                return None;
            }
            let label = labels[i % labels.len()].clone();
            let peers = sys.peer_ids();
            let to = peers[j % peers.len()].clone();
            if sys.host_of(&label) != Some(&to) {
                sys.migrate_node(&label, &to).expect("label and peer live");
            }
            None
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline stale-hit-fallback property: a cached run returns
    /// the same discovery result sets as an uncached run under
    /// arbitrary interleaved mutations. A tiny capacity (8) maximizes
    /// LRU churn on top of the epoch staleness.
    #[test]
    fn cached_and_uncached_runs_agree_on_every_lookup(
        ops in proptest::collection::vec(op(), 1..40),
        seed in 0u64..500,
        cache in prop_oneof![Just(2usize), Just(8usize), Just(64usize)],
    ) {
        let mut plain = system(seed, 0);
        let mut cached = system(seed, cache);
        let mut lookups = 0u64;
        for op in &ops {
            // Lookups against an empty tree short-circuit before the
            // cache consult; count only the ones that actually route.
            if matches!(op, Op::Lookup(_)) && cached.node_count() > 0 {
                lookups += 1;
            }
            let a = apply(&mut plain, op);
            let b = apply(&mut cached, op);
            if let (Some(a), Some(b)) = (&a, &b) {
                prop_assert_eq!(a, b, "lookup diverged on {:?}", op);
            }
        }
        // The two systems stayed in lockstep structurally, too.
        prop_assert_eq!(plain.node_labels(), cached.node_labels());
        prop_assert_eq!(plain.registered_keys(), cached.registered_keys());
        prop_assert_eq!(plain.peer_ids(), cached.peer_ids());
        // Every registered key resolves identically at the end.
        for k in plain.registered_keys() {
            let a = plain.lookup(&k);
            let b = cached.lookup(&k);
            prop_assert_eq!(a.results, b.results, "{}", k);
            prop_assert_eq!(a.satisfied, b.satisfied, "{}", k);
        }
        // The cached system really consulted its caches.
        if lookups > 0 {
            let consults = cached.cache_stats.hits
                + cached.cache_stats.misses
                + cached.cache_stats.stale_hits;
            prop_assert!(consults >= lookups);
        }
        prop_assert_eq!(plain.cache_stats.hits + plain.cache_stats.misses, 0);
    }

    /// Focused staleness hammer: warm one key hot, then mutate its
    /// region and re-query — the fallback must always produce the
    /// uncached answer, and across enough cases the stale path is
    /// actually taken.
    #[test]
    fn stale_hits_fall_back_to_correct_answers(
        key in hot_key(),
        extension in proptest::collection::vec(prop_oneof![Just(b'0'), Just(b'1')], 1..4),
        seed in 0u64..200,
    ) {
        let mut plain = system(seed, 0);
        let mut cached = system(seed, 16);
        for sys in [&mut plain, &mut cached] {
            sys.insert_data(key.clone()).expect("insert");
        }
        // Warm every peer's cache on the key.
        for _ in 0..12 {
            let a = plain.lookup(&key);
            let b = cached.lookup(&key);
            prop_assert_eq!(&a.results, &b.results);
        }
        // Mutate the key's region: register an extension (restructures
        // the node's children), then remove the key itself.
        let ext = key.concat(&Key::from_bytes(extension));
        for sys in [&mut plain, &mut cached] {
            sys.insert_data(ext.clone()).expect("insert extension");
        }
        for sys in [&mut plain, &mut cached] {
            sys.remove_data(&key).expect("remove");
        }
        for _ in 0..8 {
            let a = plain.lookup(&key);
            let b = cached.lookup(&key);
            prop_assert_eq!(a.found, b.found);
            prop_assert_eq!(&a.results, &b.results);
            let a = plain.lookup(&ext);
            let b = cached.lookup(&ext);
            prop_assert!(b.found);
            prop_assert_eq!(&a.results, &b.results);
        }
    }

    /// The invalidation-idempotence property: duplicating and delaying
    /// faultable messages — the epoch-guarded `InvalidateCached`
    /// broadcasts included — must be completely unobservable. A
    /// duplicated or late invalidation can never evict a fresher
    /// re-learned shortcut into returning a wrong answer: every lookup,
    /// the final tree and the final key set match a fault-free twin
    /// driven by the same seed.
    #[test]
    fn duplicated_and_delayed_invalidations_change_nothing_observable(
        ops in proptest::collection::vec(op(), 1..40),
        seed in 0u64..300,
    ) {
        let mut clean = system(seed, 32);
        let mut faulty = system(seed, 32);
        faulty.set_fault_plan(FaultPlan {
            loss_rate: 0.0,
            dup_rate: 0.3,
            reorder_rate: 0.3,
            seed: seed ^ 1,
        });
        for op in &ops {
            let a = apply(&mut clean, op);
            let b = apply(&mut faulty, op);
            prop_assert_eq!(&a, &b, "diverged on {:?}", op);
        }
        prop_assert_eq!(clean.node_labels(), faulty.node_labels());
        prop_assert_eq!(clean.registered_keys(), faulty.registered_keys());
        for k in clean.registered_keys() {
            let a = clean.lookup(&k);
            let b = faulty.lookup(&k);
            prop_assert_eq!(a.found, b.found, "{}", k);
            prop_assert_eq!(a.results, b.results, "{}", k);
        }
        let stats = faulty.fault_stats();
        prop_assert_eq!(stats.lost, 0, "plan loses nothing");
        prop_assert_eq!(stats.requests_failed, 0, "nothing to retry past");
    }
}

/// One seeded pass of the partition/stale-shortcut scenario. Every
/// assertion in here must hold for *every* seed; the return value
/// reports whether this seed actually exercised the stale-consult
/// path (the caller requires it across the sweep).
fn partition_stale_scenario(seed: u64) -> bool {
    let mut sys = system(seed, 16);
    let key = Key::from("000");
    let far = Key::from("110");
    sys.insert_data(key.clone()).expect("insert");
    sys.insert_data(far.clone()).expect("insert");
    for _ in 0..12 {
        assert!(sys.lookup(&key).found);
    }
    // Move the key's node to another peer: every learned shortcut to
    // it is now stale (epoch bumped, host changed). The '1' half of
    // the key space is severed FIRST (binary alphabet, so the cut
    // takes out both the `far` subtree and every peer whose
    // identifier starts with '1') — the epoch-bump invalidation
    // broadcast cannot reach the severed peers, so their cached
    // shortcut to `key` stays stale until consulted.
    let host = sys.host_of(&key).expect("node exists").clone();
    let to = sys
        .peer_ids()
        .into_iter()
        .find(|p| *p != host)
        .expect("more than one peer");
    sys.partition(Key::from("1"), Key::from("2"));
    sys.migrate_node(&key, &to).expect("label and peer live");
    let stale_before = sys.cache_stats.stale_hits;
    let mut found = 0;
    for _ in 0..8 {
        let out = sys.lookup(&key);
        if out.satisfied {
            assert!(out.found, "fallback must find the migrated key");
            assert_eq!(out.results, vec![key.clone()]);
            found += 1;
        }
    }
    assert!(found > 0, "lookups outside the cut must keep answering");
    // Enter at a node outside the cut so the route must cross it (a
    // random entry draw landing on the severed target itself would be
    // answered in-process at its own access peer, partition or not).
    let out = sys
        .request_from(&key, QueryKind::Exact(far.clone()))
        .expect("entry node is live");
    assert!(
        !out.satisfied,
        "severed lookup must fail explicitly, not hang"
    );
    assert!(sys.fault_stats().partition_dropped > 0);
    sys.heal_partition();
    let out = sys.lookup(&far);
    assert!(out.found, "healed partition restores the severed region");
    assert_eq!(out.results, vec![far]);
    sys.cache_stats.stale_hits > stale_before
}

/// Stale shortcut consulted while a partition is live: the stale entry
/// is evicted at consult time and the request falls back to the normal
/// up/down route — which stays correct as long as the route avoids the
/// severed range, while severed lookups fail explicitly instead of
/// hanging. Swept over seeds so the stale-consult path is provably
/// taken at least once.
#[test]
fn stale_cache_hit_under_partition_falls_back_to_the_normal_route() {
    let mut stale_seen = false;
    for seed in 0..16 {
        stale_seen |= partition_stale_scenario(seed);
    }
    assert!(
        stale_seen,
        "at least one seed must consult a stale shortcut under the cut"
    );
}

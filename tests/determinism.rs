//! Determinism regression: the entire system is a pure function of
//! `(config, seed, operation sequence)`. Two identical runs must agree
//! on every observable — message counters, tree shape, peer placement,
//! request outcomes — byte for byte. This is what makes the Section-4
//! experiment harness reproducible and every other test in this suite
//! debuggable.

use dlpt::core::messages::QueryKind;
use dlpt::core::{Alphabet, DlptSystem, FaultPlan, FaultStats, Key, LookupOutcome};

const KEYS: [&str; 12] = [
    "DGEMM", "DGEMV", "DTRSM", "DTRMM", "SGEMM", "SGEMV", "S3L_fft", "S3L_sort", "PSGESV",
    "PDGEMM", "ZTRSM", "CAXPY",
];

/// One fixed mixed workload: bootstrap, registrations, churn,
/// removals, and every query kind. Returns the system plus the
/// outcomes observed along the way.
fn scripted_run(seed: u64) -> (DlptSystem, Vec<LookupOutcome>) {
    scripted_run_with_cache(seed, 0)
}

/// The same scripted workload with an explicit routing-shortcut cache
/// capacity (`dlpt-core::cache`; 0 = off).
fn scripted_run_with_cache(seed: u64, cache: usize) -> (DlptSystem, Vec<LookupOutcome>) {
    let mut sys = DlptSystem::builder()
        .alphabet(Alphabet::grid())
        .seed(seed)
        .peer_id_len(12)
        .cache_capacity(cache)
        .bootstrap_peers(5)
        .build();
    let mut outcomes = Vec::new();
    for k in &KEYS[..8] {
        sys.insert_data(*k).unwrap();
    }
    sys.add_peer(1_000).unwrap();
    sys.add_peer(1_000).unwrap();
    for k in &KEYS[8..] {
        sys.insert_data(*k).unwrap();
    }
    let victim = sys.peer_ids()[1].clone();
    sys.leave_peer(&victim).unwrap();
    sys.remove_data(&Key::from("SGEMV")).unwrap();
    for k in ["DGEMM", "S3L_fft", "MISSING"] {
        outcomes.push(sys.lookup(&Key::from(k)));
    }
    outcomes.push(sys.request(QueryKind::Complete(Key::from("S3L"))).unwrap());
    outcomes.push(
        sys.request(QueryKind::Range(Key::from("D"), Key::from("E")))
            .unwrap(),
    );
    sys.end_time_unit();
    (sys, outcomes)
}

/// The full observable state of a run, canonically ordered. Two runs
/// agree iff their fingerprints are byte-identical.
fn fingerprint(sys: &DlptSystem, outcomes: &[LookupOutcome]) -> String {
    let mut out = String::new();
    out.push_str(&format!("stats: {:?}\n", sys.stats));
    out.push_str(&format!("peers: {:?}\n", sys.peer_ids()));
    for label in sys.node_labels() {
        out.push_str(&format!(
            "node {:?} on {:?}: {:?}\n",
            label,
            sys.host_of(&label),
            sys.node(&label)
        ));
    }
    for o in outcomes {
        out.push_str(&format!("outcome: {o:?}\n"));
    }
    out
}

#[test]
fn identical_seeds_give_byte_identical_runs() {
    let (sys_a, out_a) = scripted_run(42);
    let (sys_b, out_b) = scripted_run(42);
    // Structured equality first (better failure messages)…
    assert_eq!(sys_a.stats, sys_b.stats, "SystemStats diverged");
    assert_eq!(sys_a.peer_ids(), sys_b.peer_ids());
    assert_eq!(sys_a.node_labels(), sys_b.node_labels());
    assert_eq!(sys_a.registered_keys(), sys_b.registered_keys());
    for label in sys_a.node_labels() {
        assert_eq!(sys_a.node(&label), sys_b.node(&label), "node {label}");
        assert_eq!(
            sys_a.host_of(&label),
            sys_b.host_of(&label),
            "host of {label}"
        );
    }
    assert_eq!(out_a, out_b, "request outcomes diverged");
    // …then the byte-for-byte check over everything at once.
    assert_eq!(fingerprint(&sys_a, &out_a), fingerprint(&sys_b, &out_b));
}

#[test]
fn tree_shape_is_seed_independent_even_when_placement_is_not() {
    // The PGCP tree is a function of the key set alone; the seed only
    // drives peer identifiers, entry points, and therefore placement
    // and message counts.
    let (sys_a, _) = scripted_run(1);
    let (sys_b, _) = scripted_run(2);
    assert_eq!(sys_a.node_labels(), sys_b.node_labels());
    assert_eq!(sys_a.registered_keys(), sys_b.registered_keys());
    assert_ne!(
        sys_a.peer_ids(),
        sys_b.peer_ids(),
        "distinct seeds should draw distinct peer identifiers"
    );
}

/// Golden regression: the observable behaviour of the scripted run is
/// pinned to a committed fingerprint, so representation refactors (the
/// SSO `Key`, the interned directory) can prove they changed *nothing*
/// observable — placement, message counts, results and hop paths must
/// stay byte-identical across refactors, not merely across runs.
///
/// To re-bless after an *intentional* behaviour change:
/// `DLPT_BLESS=1 cargo test --test determinism golden`.
#[test]
fn golden_fingerprint_matches_committed_baseline() {
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/determinism_seed42.txt"
    );
    let (sys, outcomes) = scripted_run(42);
    let got = fingerprint(&sys, &outcomes);
    if std::env::var_os("DLPT_BLESS").is_some() {
        std::fs::write(golden_path, &got).expect("write golden fingerprint");
        return;
    }
    let want = std::fs::read_to_string(golden_path).expect("golden fingerprint is committed");
    assert_eq!(
        got, want,
        "observable behaviour diverged from the committed golden run"
    );
}

/// Caching satellite: a system built with the cache knob explicitly
/// off must reproduce the committed golden fingerprint byte for byte —
/// the cache subsystem's epoch bookkeeping, shard cache fields and
/// counters may not leak into any observable.
#[test]
fn cache_off_reproduces_committed_golden_fingerprint() {
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/determinism_seed42.txt"
    );
    let (sys, outcomes) = scripted_run_with_cache(42, 0);
    assert_eq!(sys.cache_stats, dlpt::core::CacheStats::default());
    let got = fingerprint(&sys, &outcomes);
    let want = std::fs::read_to_string(golden_path).expect("golden fingerprint is committed");
    assert_eq!(
        got, want,
        "cache-off system diverged from the committed golden run"
    );
}

/// The cached system takes different routes (shorter paths, fewer
/// visits) but must still produce the same tree, the same placement
/// and the same result sets as the golden run.
#[test]
fn cached_run_matches_golden_results_and_placement() {
    let (golden, golden_out) = scripted_run(42);
    let (cached, cached_out) = scripted_run_with_cache(42, 32);
    assert_eq!(golden.peer_ids(), cached.peer_ids());
    assert_eq!(golden.node_labels(), cached.node_labels());
    assert_eq!(golden.registered_keys(), cached.registered_keys());
    for label in golden.node_labels() {
        assert_eq!(
            golden.host_of(&label),
            cached.host_of(&label),
            "host of {label}"
        );
    }
    assert_eq!(golden_out.len(), cached_out.len());
    for (a, b) in golden_out.iter().zip(&cached_out) {
        assert_eq!(a.results, b.results);
        assert_eq!(a.found, b.found);
        assert_eq!(a.satisfied, b.satisfied);
    }
}

/// Observability satellite, half one: the tracer is off by default
/// (`Tracer::Noop`) and the scripted run must reproduce the committed
/// golden fingerprint byte for byte — the tracing hooks threaded
/// through `deliver`/`begin_request`/gather may not perturb a single
/// counter, RNG draw or outcome of an untraced system.
#[test]
fn tracing_off_reproduces_committed_golden_fingerprint() {
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/determinism_seed42.txt"
    );
    let (sys, outcomes) = scripted_run(42);
    assert!(!sys.tracing_enabled(), "tracing must be off by default");
    let got = fingerprint(&sys, &outcomes);
    let want = std::fs::read_to_string(golden_path).expect("golden fingerprint is committed");
    assert_eq!(
        got, want,
        "tracing-off system diverged from the committed golden run"
    );
}

/// Observability satellite, half two: turning the ring tracer *on*
/// only adds events — every observable the fingerprint covers stays
/// byte-identical, because emission reads engine state without ever
/// branching it.
#[test]
fn tracing_on_reproduces_committed_golden_fingerprint_and_captures_events() {
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/determinism_seed42.txt"
    );
    let traced_run = |seed: u64| {
        let mut sys = DlptSystem::builder()
            .alphabet(Alphabet::grid())
            .seed(seed)
            .peer_id_len(12)
            .bootstrap_peers(5)
            .build();
        sys.set_tracing(1 << 12);
        let mut outcomes = Vec::new();
        for k in &KEYS[..8] {
            sys.insert_data(*k).unwrap();
        }
        sys.add_peer(1_000).unwrap();
        sys.add_peer(1_000).unwrap();
        for k in &KEYS[8..] {
            sys.insert_data(*k).unwrap();
        }
        let victim = sys.peer_ids()[1].clone();
        sys.leave_peer(&victim).unwrap();
        sys.remove_data(&Key::from("SGEMV")).unwrap();
        for k in ["DGEMM", "S3L_fft", "MISSING"] {
            outcomes.push(sys.lookup(&Key::from(k)));
        }
        outcomes.push(sys.request(QueryKind::Complete(Key::from("S3L"))).unwrap());
        outcomes.push(
            sys.request(QueryKind::Range(Key::from("D"), Key::from("E")))
                .unwrap(),
        );
        sys.end_time_unit();
        (sys, outcomes)
    };
    let (mut sys, outcomes) = traced_run(42);
    let events = sys.take_trace();
    assert!(
        !events.is_empty(),
        "the traced scripted run must capture events"
    );
    let got = fingerprint(&sys, &outcomes);
    let want = std::fs::read_to_string(golden_path).expect("golden fingerprint is committed");
    assert_eq!(
        got, want,
        "tracing-on system diverged from the committed golden run"
    );
    // And the event stream itself replays: same seed, same events.
    let (mut sys_b, _) = traced_run(42);
    assert_eq!(events, sys_b.take_trace(), "trace diverged across replays");
}

/// Fault-injection satellite, half one: the fault layer is *inert by
/// default*. The scripted run never installs a plan, so no fault
/// counter may move and the committed golden fingerprint must be
/// reproduced byte for byte — the `FaultyTransport` wiring may not
/// perturb a single RNG draw or counter of a fault-free system.
#[test]
fn fault_layer_off_reproduces_committed_golden_fingerprint() {
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/determinism_seed42.txt"
    );
    let (sys, outcomes) = scripted_run(42);
    assert_eq!(
        sys.fault_stats(),
        FaultStats::default(),
        "no plan installed, no counter may move"
    );
    let got = fingerprint(&sys, &outcomes);
    let want = std::fs::read_to_string(golden_path).expect("golden fingerprint is committed");
    assert_eq!(
        got, want,
        "fault-off system diverged from the committed golden run"
    );
}

/// Fault-injection satellite, half two: faults themselves are seeded.
/// Two runs under the same `FaultPlan` draw the same losses,
/// duplications and deferrals and end with byte-identical observables
/// and identical fault counters — lossy experiments replay exactly.
#[test]
fn identical_fault_plans_give_byte_identical_lossy_runs() {
    let lossy_run = |seed: u64| {
        let mut sys = DlptSystem::builder()
            .alphabet(Alphabet::grid())
            .seed(seed)
            .peer_id_len(12)
            .bootstrap_peers(5)
            .build();
        sys.set_fault_plan(FaultPlan {
            loss_rate: 0.15,
            dup_rate: 0.10,
            reorder_rate: 0.10,
            seed: seed ^ 0xFA17,
        });
        let mut outcomes = Vec::new();
        for k in &KEYS[..8] {
            sys.insert_data(*k).unwrap();
        }
        for _ in 0..3 {
            for k in ["DGEMM", "S3L_fft", "DTRSM", "MISSING", "PSGESV"] {
                outcomes.push(sys.lookup(&Key::from(k)));
            }
            outcomes.push(sys.request(QueryKind::Complete(Key::from("S3L"))).unwrap());
        }
        (sys, outcomes)
    };
    let (sys_a, out_a) = lossy_run(42);
    let (sys_b, out_b) = lossy_run(42);
    assert_eq!(sys_a.fault_stats(), sys_b.fault_stats());
    assert_eq!(out_a, out_b, "lossy outcomes diverged");
    assert_eq!(fingerprint(&sys_a, &out_a), fingerprint(&sys_b, &out_b));
    // The plan really bit: something was drawn against it.
    let stats = sys_a.fault_stats();
    assert!(
        stats.lost + stats.duplicated + stats.reordered > 0,
        "a 15%/10%/10% plan over this workload must trigger: {stats:?}"
    );
}

#[test]
fn repeated_fingerprints_are_stable_across_many_seeds() {
    for seed in 0..10 {
        let (sys_a, out_a) = scripted_run(seed);
        let (sys_b, out_b) = scripted_run(seed);
        assert_eq!(
            fingerprint(&sys_a, &out_a),
            fingerprint(&sys_b, &out_b),
            "seed {seed}"
        );
    }
}

//! Failure injection: non-graceful departures, repeated crashes, and
//! recovery through tree repair plus re-registration (the extension
//! described in DESIGN.md).

use dlpt::core::{DlptSystem, Key};
use dlpt::workloads::corpus::Corpus;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

fn system_with_keys(seed: u64, peers: usize, n_keys: usize) -> (DlptSystem, Vec<Key>) {
    let keys = Corpus::grid().take_spread(n_keys);
    let mut sys = DlptSystem::builder()
        .seed(seed)
        .bootstrap_peers(peers)
        .build();
    for k in &keys {
        sys.insert_data(k.clone()).unwrap();
    }
    (sys, keys)
}

fn replicated_system_with_keys(
    seed: u64,
    peers: usize,
    n_keys: usize,
    k: usize,
) -> (DlptSystem, Vec<Key>) {
    let keys = Corpus::grid().take_spread(n_keys);
    let mut sys = DlptSystem::builder()
        .seed(seed)
        .replication(k)
        .bootstrap_peers(peers)
        .build();
    for key in &keys {
        sys.insert_data(key.clone()).unwrap();
    }
    (sys, keys)
}

#[test]
fn single_crash_repair_reattaches_orphans() {
    let (mut sys, keys) = system_with_keys(41, 10, 120);
    // Crash the most loaded peer (worst case).
    let victim = sys
        .peer_ids()
        .into_iter()
        .max_by_key(|p| sys.shard(p).map(|s| s.node_count()).unwrap_or(0))
        .unwrap();
    let lost = sys.crash_peer(&victim).unwrap();
    assert!(!lost.is_empty());
    sys.repair_tree();
    sys.check_tree().expect("tree links repaired");
    sys.check_ring().expect("ring healed");
    // Surviving keys remain discoverable.
    let lost_set: std::collections::BTreeSet<&Key> = lost.iter().collect();
    for k in keys.iter().filter(|k| !lost_set.contains(k)) {
        sys.end_time_unit();
        assert!(sys.lookup(k).satisfied, "survivor {k} unreachable");
    }
}

#[test]
fn with_k2_any_single_crash_loses_zero_keys() {
    // The no-loss upgrade of `single_crash_repair_reattaches_orphans`:
    // with one follower per node, crashing ANY single peer (each in
    // turn, from a fresh system) must leave every registered key
    // discoverable — no survivors-only weasel clause.
    let (reference, keys) = replicated_system_with_keys(41, 10, 120, 2);
    let peer_ids = reference.peer_ids();
    drop(reference);
    for victim in peer_ids {
        let (mut sys, _) = replicated_system_with_keys(41, 10, 120, 2);
        let lost = sys.crash_peer(&victim).unwrap();
        assert!(lost.is_empty(), "crashing {victim} lost {lost:?}");
        sys.repair_tree();
        sys.check_tree().expect("tree links intact after failover");
        sys.check_ring().expect("ring healed");
        sys.check_mapping().expect("mapping holds after promotion");
        for k in &keys {
            sys.end_time_unit();
            assert!(sys.lookup(k).satisfied, "{k} lost after crashing {victim}");
        }
    }
}

#[test]
fn thirty_percent_crash_horizon_is_lossless_at_k2_and_lossy_at_k1() {
    // The figR acceptance scenario as a direct test: crash 30% of the
    // population across a horizon with anti-entropy repair between
    // failures. k=2 ends with zero lost keys; k=1 demonstrably loses.
    let run = |k: usize| -> (usize, usize, DlptSystem, Vec<Key>) {
        let (mut sys, keys) = replicated_system_with_keys(61, 20, 150, k);
        sys.anti_entropy().unwrap();
        let mut crashed = 0;
        while crashed < 6 {
            // 6 of 20 = 30% of the original population; always the
            // most loaded peer — the worst case for both settings.
            let victim = sys
                .peer_ids()
                .into_iter()
                .max_by_key(|p| sys.shard(p).map(|s| s.node_count()).unwrap_or(0))
                .unwrap();
            sys.crash_peer(&victim).unwrap();
            crashed += 1;
            sys.repair_tree();
            sys.anti_entropy().unwrap();
            sys.check_ring().unwrap();
            sys.check_mapping().unwrap();
        }
        let alive: std::collections::BTreeSet<Key> = sys.registered_keys().into_iter().collect();
        let survivors = keys.iter().filter(|k| alive.contains(*k)).count();
        (survivors, keys.len(), sys, keys)
    };
    let (survivors, total, mut sys, keys) = run(2);
    assert_eq!(survivors, total, "k=2 + anti-entropy must lose zero keys");
    sys.check_replication()
        .expect("replication invariant restored");
    for k in &keys {
        sys.end_time_unit();
        assert!(sys.lookup(k).satisfied, "{k}");
    }
    let (survivors, total, _, _) = run(1);
    assert!(
        survivors < total,
        "k=1 must demonstrably lose keys ({survivors}/{total} survived)"
    );
}

#[test]
fn lost_keys_recover_after_reregistration() {
    let (mut sys, keys) = system_with_keys(43, 8, 100);
    let victim = sys.peer_ids()[3].clone();
    sys.crash_peer(&victim).unwrap();
    sys.repair_tree();
    // Servers re-announce (idempotent for survivors).
    for k in &keys {
        sys.insert_data(k.clone()).unwrap();
    }
    sys.check_tree().unwrap();
    sys.check_mapping().unwrap();
    for k in &keys {
        sys.end_time_unit();
        assert!(sys.lookup(k).satisfied, "{k}");
    }
}

#[test]
fn cascade_of_crashes_with_repair_between() {
    let (mut sys, keys) = system_with_keys(47, 12, 80);
    let mut rng = rand::rngs::StdRng::seed_from_u64(47);
    for round in 0..5 {
        let ids = sys.peer_ids();
        if ids.len() <= 2 {
            break;
        }
        let victim = ids.choose(&mut rng).unwrap().clone();
        sys.crash_peer(&victim).unwrap();
        sys.repair_tree();
        sys.check_tree()
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        sys.check_ring().unwrap();
        // Re-register everything; system must accept and stay sane.
        for k in &keys {
            sys.insert_data(k.clone()).unwrap();
        }
    }
    for k in &keys {
        sys.end_time_unit();
        assert!(sys.lookup(k).satisfied, "{k}");
    }
}

#[test]
fn crash_of_root_host_is_survivable() {
    let (mut sys, keys) = system_with_keys(53, 8, 60);
    let root = sys.root().expect("tree built").clone();
    let root_host = sys.host_of(&root).expect("root hosted").clone();
    let lost = sys.crash_peer(&root_host).unwrap();
    assert!(lost.contains(&root), "the root was on that peer");
    sys.repair_tree();
    sys.check_tree().unwrap();
    for k in &keys {
        sys.insert_data(k.clone()).unwrap();
    }
    sys.check_tree().unwrap();
    sys.check_mapping().unwrap();
    for k in &keys {
        sys.end_time_unit();
        assert!(sys.lookup(k).satisfied, "{k}");
    }
}

#[test]
fn crashes_interleaved_with_queries_and_balancing() {
    use dlpt::core::balance::mlt::rebalance_pair;
    let (mut sys, keys) = system_with_keys(59, 10, 80);
    let mut rng = rand::rngs::StdRng::seed_from_u64(59);
    for _ in 0..3 {
        // Load the system, roll the unit, rebalance.
        for _ in 0..60 {
            let k = keys.choose(&mut rng).unwrap();
            sys.lookup(k);
        }
        sys.end_time_unit();
        let ids = sys.peer_ids();
        for id in ids.iter().take(4) {
            if sys.shard(id).is_some() {
                rebalance_pair(&mut sys, id);
            }
        }
        // Crash someone, repair, re-register.
        let ids = sys.peer_ids();
        if ids.len() > 3 {
            let victim = ids[rng.gen_range(0..ids.len())].clone();
            sys.crash_peer(&victim).unwrap();
            sys.repair_tree();
            for k in &keys {
                sys.insert_data(k.clone()).unwrap();
            }
        }
        sys.check_tree().unwrap();
        sys.check_mapping().unwrap();
        sys.check_ring().unwrap();
    }
}

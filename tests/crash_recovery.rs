//! Failure injection: non-graceful departures, repeated crashes, and
//! recovery through tree repair plus re-registration (the extension
//! described in DESIGN.md).

use dlpt::core::{DlptSystem, Key};
use dlpt::workloads::corpus::Corpus;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

fn system_with_keys(seed: u64, peers: usize, n_keys: usize) -> (DlptSystem, Vec<Key>) {
    let keys = Corpus::grid().take_spread(n_keys);
    let mut sys = DlptSystem::builder()
        .seed(seed)
        .bootstrap_peers(peers)
        .build();
    for k in &keys {
        sys.insert_data(k.clone()).unwrap();
    }
    (sys, keys)
}

#[test]
fn single_crash_repair_reattaches_orphans() {
    let (mut sys, keys) = system_with_keys(41, 10, 120);
    // Crash the most loaded peer (worst case).
    let victim = sys
        .peer_ids()
        .into_iter()
        .max_by_key(|p| sys.shard(p).map(|s| s.node_count()).unwrap_or(0))
        .unwrap();
    let lost = sys.crash_peer(&victim).unwrap();
    assert!(!lost.is_empty());
    sys.repair_tree();
    sys.check_tree().expect("tree links repaired");
    sys.check_ring().expect("ring healed");
    // Surviving keys remain discoverable.
    let lost_set: std::collections::BTreeSet<&Key> = lost.iter().collect();
    for k in keys.iter().filter(|k| !lost_set.contains(k)) {
        sys.end_time_unit();
        assert!(sys.lookup(k).satisfied, "survivor {k} unreachable");
    }
}

#[test]
fn lost_keys_recover_after_reregistration() {
    let (mut sys, keys) = system_with_keys(43, 8, 100);
    let victim = sys.peer_ids()[3].clone();
    sys.crash_peer(&victim).unwrap();
    sys.repair_tree();
    // Servers re-announce (idempotent for survivors).
    for k in &keys {
        sys.insert_data(k.clone()).unwrap();
    }
    sys.check_tree().unwrap();
    sys.check_mapping().unwrap();
    for k in &keys {
        sys.end_time_unit();
        assert!(sys.lookup(k).satisfied, "{k}");
    }
}

#[test]
fn cascade_of_crashes_with_repair_between() {
    let (mut sys, keys) = system_with_keys(47, 12, 80);
    let mut rng = rand::rngs::StdRng::seed_from_u64(47);
    for round in 0..5 {
        let ids = sys.peer_ids();
        if ids.len() <= 2 {
            break;
        }
        let victim = ids.choose(&mut rng).unwrap().clone();
        sys.crash_peer(&victim).unwrap();
        sys.repair_tree();
        sys.check_tree()
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        sys.check_ring().unwrap();
        // Re-register everything; system must accept and stay sane.
        for k in &keys {
            sys.insert_data(k.clone()).unwrap();
        }
    }
    for k in &keys {
        sys.end_time_unit();
        assert!(sys.lookup(k).satisfied, "{k}");
    }
}

#[test]
fn crash_of_root_host_is_survivable() {
    let (mut sys, keys) = system_with_keys(53, 8, 60);
    let root = sys.root().expect("tree built").clone();
    let root_host = sys.host_of(&root).expect("root hosted").clone();
    let lost = sys.crash_peer(&root_host).unwrap();
    assert!(lost.contains(&root), "the root was on that peer");
    sys.repair_tree();
    sys.check_tree().unwrap();
    for k in &keys {
        sys.insert_data(k.clone()).unwrap();
    }
    sys.check_tree().unwrap();
    sys.check_mapping().unwrap();
    for k in &keys {
        sys.end_time_unit();
        assert!(sys.lookup(k).satisfied, "{k}");
    }
}

#[test]
fn crashes_interleaved_with_queries_and_balancing() {
    use dlpt::core::balance::mlt::rebalance_pair;
    let (mut sys, keys) = system_with_keys(59, 10, 80);
    let mut rng = rand::rngs::StdRng::seed_from_u64(59);
    for _ in 0..3 {
        // Load the system, roll the unit, rebalance.
        for _ in 0..60 {
            let k = keys.choose(&mut rng).unwrap();
            sys.lookup(k);
        }
        sys.end_time_unit();
        let ids = sys.peer_ids();
        for id in ids.iter().take(4) {
            if sys.shard(id).is_some() {
                rebalance_pair(&mut sys, id);
            }
        }
        // Crash someone, repair, re-register.
        let ids = sys.peer_ids();
        if ids.len() > 3 {
            let victim = ids[rng.gen_range(0..ids.len())].clone();
            sys.crash_peer(&victim).unwrap();
            sys.repair_tree();
            for k in &keys {
                sys.insert_data(k.clone()).unwrap();
            }
        }
        sys.check_tree().unwrap();
        sys.check_mapping().unwrap();
        sys.check_ring().unwrap();
    }
}

//! Answer parity across the three trie overlays: DLPT, PHT and P-Grid
//! must return the same answers on identical corpora — Table 2
//! compares their *costs*, which is only meaningful if they do the
//! same work.

use dlpt::baselines::pht::{PhtConfig, PrefixHashTree};
use dlpt::baselines::PGrid;
use dlpt::core::{DlptSystem, Key};
use dlpt::workloads::corpus::Corpus;

fn corpus() -> Vec<Key> {
    Corpus::grid().take_spread(150)
}

fn dlpt_with(keys: &[Key]) -> DlptSystem {
    let mut sys = DlptSystem::builder().seed(31).bootstrap_peers(12).build();
    for k in keys {
        sys.insert_data(k.clone()).unwrap();
    }
    sys
}

fn pht_with(keys: &[Key]) -> PrefixHashTree {
    let mut pht = PrefixHashTree::new(
        PhtConfig {
            leaf_capacity: 4,
            depth_bytes: 24,
            succ_list_len: 4,
        },
        12,
        31,
    );
    for k in keys {
        pht.insert(k);
    }
    pht
}

fn pgrid_with(keys: &[Key]) -> PGrid {
    PGrid::build(keys, 12, 2, 24, 31)
}

#[test]
fn exact_lookup_parity() {
    let keys = corpus();
    let mut dlpt = dlpt_with(&keys);
    let mut pht = pht_with(&keys);
    let mut pgrid = pgrid_with(&keys);
    for k in &keys {
        assert!(dlpt.lookup(k).found, "DLPT misses {k}");
        assert!(pht.lookup(k).0, "PHT misses {k}");
        assert!(pgrid.lookup(k).0, "P-Grid misses {k}");
    }
    for absent in ["NOPE", "DGEMM_X", "S3L_"] {
        let k = Key::from(absent);
        let d = dlpt.lookup(&k).found;
        let p = pht.lookup(&k).0;
        let g = pgrid.lookup(&k).0;
        assert_eq!((d, p, g), (false, false, false), "{absent}");
    }
}

#[test]
fn range_query_parity() {
    let keys = corpus();
    let mut dlpt = dlpt_with(&keys);
    let mut pht = pht_with(&keys);
    let mut pgrid = pgrid_with(&keys);
    for (lo, hi) in [
        ("D", "E"),
        ("DGEMM", "DTRSM"),
        ("P", "Q"),
        ("S3L_a", "S3L_z"),
        ("A", "ZZZZ"),
        ("ZZ", "ZZZ"),
    ] {
        let (lo, hi) = (Key::from(lo), Key::from(hi));
        let want: Vec<Key> = keys
            .iter()
            .filter(|k| **k >= lo && **k <= hi)
            .cloned()
            .collect();
        let mut want = want;
        want.sort();
        assert_eq!(dlpt.range(&lo, &hi).results, want, "DLPT range {lo}..{hi}");
        assert_eq!(pht.range(&lo, &hi), want, "PHT range {lo}..{hi}");
        assert_eq!(pgrid.range(&lo, &hi).0, want, "P-Grid range {lo}..{hi}");
    }
}

#[test]
fn dlpt_routing_beats_pht_on_identical_corpus() {
    // The Table 2 claim, asserted as an inequality on mean physical
    // hops per lookup over the same keys and peer count.
    let keys = corpus();
    let mut dlpt = dlpt_with(&keys);
    let mut pht = pht_with(&keys);
    let mut dlpt_hops = 0usize;
    for k in keys.iter().step_by(3) {
        dlpt_hops += dlpt.lookup(k).physical_hops();
        dlpt.end_time_unit();
    }
    let before = pht.stats.dht_hops;
    let mut lookups = 0u64;
    for k in keys.iter().step_by(3) {
        pht.lookup(k);
        lookups += 1;
    }
    let pht_hops = (pht.stats.dht_hops - before) as f64 / lookups as f64;
    let dlpt_hops = dlpt_hops as f64 / lookups as f64;
    assert!(
        dlpt_hops < pht_hops / 2.0,
        "DLPT {dlpt_hops:.2} should be far below PHT {pht_hops:.2}"
    );
}

//! Property tests of the replication subsystem (`protocol::repair`):
//! after *any* seeded sequence of joins, crashes, insertions and
//! repairs, every surviving key has `min(k, |live peers|)` distinct
//! live replica hosts, and the mapping and ring invariants still hold.

use dlpt::core::{DlptSystem, Key};
use dlpt::workloads::corpus::Corpus;
use proptest::prelude::*;
use std::collections::BTreeSet;

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Join a fresh random peer.
    Join,
    /// Crash the i-th live peer (index wrapped).
    Crash(usize),
    /// Register the i-th corpus key (index wrapped).
    Insert(usize),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Join),
        (0usize..64).prop_map(Op::Crash),
        (0usize..64).prop_map(Op::Crash), // bias toward failures
        (0usize..64).prop_map(Op::Insert),
    ]
}

/// The "each time unit ends with repair" discipline the runtime uses:
/// re-attach orphans, then run the self-healing pass.
fn repair(sys: &mut DlptSystem) {
    sys.repair_tree();
    sys.anti_entropy().expect("anti-entropy completes");
}

/// Replication invariant plus the structural invariants that must
/// survive any crash/repair interleaving.
fn assert_invariants(sys: &DlptSystem, k: usize) {
    prop_assert!(sys.check_mapping().is_ok(), "{:?}", sys.check_mapping());
    prop_assert!(sys.check_ring().is_ok(), "{:?}", sys.check_ring());
    prop_assert!(
        sys.check_replication().is_ok(),
        "{:?}",
        sys.check_replication()
    );
    let want = k.min(sys.peer_count());
    for label in sys.node_labels() {
        let hosts = sys.replica_hosts(&label);
        let distinct: BTreeSet<&Key> = hosts.iter().collect();
        prop_assert_eq!(
            distinct.len(),
            hosts.len(),
            "replica hosts of {} not distinct: {:?}",
            &label,
            &hosts
        );
        prop_assert!(
            hosts.len() >= want,
            "{} has {} replica hosts {:?}, want {}",
            &label,
            hosts.len(),
            &hosts,
            want
        );
        for h in &hosts {
            prop_assert!(
                sys.shard(h).is_some(),
                "{} hosted on dead peer {}",
                &label,
                h
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Joins, crashes and inserts in any order, each step closed by the
    /// repair discipline, never break the replication invariant.
    #[test]
    fn any_join_crash_repair_sequence_keeps_min_k_live_replicas(
        ops in proptest::collection::vec(op(), 1..16),
        seed in 0u64..500,
        k in 2usize..4,
    ) {
        let corpus = Corpus::grid().take_spread(24);
        let mut sys = DlptSystem::builder()
            .seed(seed)
            .peer_id_len(10)
            .replication(k)
            .bootstrap_peers(5)
            .build();
        let mut registered: BTreeSet<Key> = BTreeSet::new();
        for key in corpus.iter().take(8) {
            sys.insert_data(key.clone()).unwrap();
            registered.insert(key.clone());
        }
        repair(&mut sys);
        assert_invariants(&sys, k);

        for op in ops {
            match op {
                Op::Join => {
                    sys.add_peer(1_000).unwrap();
                }
                Op::Crash(i) => {
                    let ids = sys.peer_ids();
                    if ids.len() <= 2 {
                        continue; // keep a ring worth crashing into
                    }
                    let victim = ids[i % ids.len()].clone();
                    let lost = sys.crash_peer(&victim).unwrap();
                    // Fresh replicas exist for every node (the repair
                    // discipline ran after every step), so a single
                    // crash is always fully absorbed.
                    prop_assert!(lost.is_empty(), "lost {:?}", lost);
                }
                Op::Insert(i) => {
                    let key = corpus[i % corpus.len()].clone();
                    sys.insert_data(key.clone()).unwrap();
                    registered.insert(key);
                }
            }
            repair(&mut sys);
            assert_invariants(&sys, k);
        }

        // Zero data loss: every registered key is still discoverable.
        let alive: BTreeSet<Key> = sys.registered_keys().into_iter().collect();
        prop_assert_eq!(&alive, &registered);
        for key in &registered {
            sys.end_time_unit();
            let out = sys.lookup(key);
            prop_assert!(out.satisfied, "{} lost after the sequence", key);
        }
        prop_assert!(sys.check_tree().is_ok(), "{:?}", sys.check_tree());
    }

    /// The unreplicated system under the same discipline keeps its
    /// structural invariants (mapping/ring) even though crashes lose
    /// data — the baseline `figR` quantifies.
    #[test]
    fn k1_sequences_keep_structural_invariants(
        ops in proptest::collection::vec(op(), 1..12),
        seed in 0u64..200,
    ) {
        let corpus = Corpus::grid().take_spread(16);
        let mut sys = DlptSystem::builder()
            .seed(seed)
            .peer_id_len(10)
            .bootstrap_peers(4)
            .build();
        for key in corpus.iter().take(6) {
            sys.insert_data(key.clone()).unwrap();
        }
        for op in ops {
            match op {
                Op::Join => {
                    sys.add_peer(1_000).unwrap();
                }
                Op::Crash(i) => {
                    let ids = sys.peer_ids();
                    if ids.len() <= 2 {
                        continue;
                    }
                    let victim = ids[i % ids.len()].clone();
                    sys.crash_peer(&victim).unwrap();
                }
                Op::Insert(i) => {
                    sys.insert_data(corpus[i % corpus.len()].clone()).unwrap();
                }
            }
            sys.repair_tree();
            prop_assert!(sys.check_mapping().is_ok(), "{:?}", sys.check_mapping());
            prop_assert!(sys.check_ring().is_ok(), "{:?}", sys.check_ring());
            prop_assert!(sys.check_tree().is_ok(), "{:?}", sys.check_tree());
        }
    }
}

//! Runtime-equivalence property: the unified engine means the three
//! runtimes — the synchronous pump, the (zero-latency) discrete-event
//! `LatencyNet` and the threaded `ThreadedDlpt` — are *the same
//! protocol* under different transports. Driving one seeded workload
//! (joins, registrations, discoveries of every kind, removals, crashes
//! under `k = 2` replication, cache on/off) through all three must
//! yield identical node placements and identical discovery result
//! sets.
//!
//! What may legitimately differ: message/hop counts (transports
//! schedule differently) and anything capacity-related (only the sync
//! pump charges capacity — kept unbounded here).

use dlpt::core::{Alphabet, DlptSystem, FaultPlan, Key, QueryKind, Violation};
use dlpt::net::{LatencyModel, LatencyNet, ThreadedDlpt};
use proptest::prelude::*;
use std::collections::BTreeMap;

const KEY_POOL: [&str; 16] = [
    "DGEMM", "DGEMV", "DTRSM", "DTRMM", "SGEMM", "SGEMV", "S3L_fft", "S3L_sort", "S3L_mat",
    "PSGESV", "PDGEMM", "ZTRSM", "CAXPY", "DGEX", "DG", "S3L_",
];

#[derive(Debug, Clone)]
enum Op {
    /// Join a fresh peer (identifier drawn from a deterministic pool).
    Join,
    /// Register `KEY_POOL[i % len]`.
    Insert(u8),
    /// Deregister `KEY_POOL[i % len]`.
    Remove(u8),
    /// Exact lookup of `KEY_POOL[i % len]`.
    Lookup(u8),
    /// Completion of the first 2–3 digits of `KEY_POOL[i % len]`.
    Complete(u8),
    /// Range over the sorted pair of two pool keys.
    Range(u8, u8),
    /// Crash the `i % live`-th peer (replicated configs only; wrapped
    /// in anti-entropy passes so all runtimes fail over identically).
    Crash(u8),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Join),
        any::<u8>().prop_map(Op::Insert),
        any::<u8>().prop_map(Op::Insert), // bias toward growth
        any::<u8>().prop_map(Op::Remove),
        any::<u8>().prop_map(Op::Lookup),
        any::<u8>().prop_map(Op::Lookup),
        any::<u8>().prop_map(Op::Complete),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Range(a, b)),
        any::<u8>().prop_map(Op::Crash),
    ]
}

fn key(i: u8) -> Key {
    Key::from(KEY_POOL[i as usize % KEY_POOL.len()])
}

/// Deterministic, collision-free peer identifier pool (valid in the
/// grid alphabet).
fn peer_id(i: usize) -> Key {
    Key::from(format!("P{i:03}X"))
}

/// The observable state the three runtimes must agree on.
#[derive(Debug, PartialEq, Eq)]
struct Observed {
    placements: BTreeMap<Key, Key>,
    results: Vec<(bool, Vec<Key>)>,
}

/// Drives `ops` through one runtime behind a tiny trait object-free
/// adapter. `k` is the replication factor; `cache` the per-peer route
/// cache capacity.
trait Runtime {
    fn join(&mut self, id: Key);
    fn insert(&mut self, key: Key);
    fn remove(&mut self, key: &Key);
    fn query(&mut self, op: &Op) -> (bool, Vec<Key>);
    fn crash(&mut self, id: &Key);
    fn anti_entropy(&mut self);
    fn peers(&self) -> Vec<Key>;
    fn placements(&self) -> BTreeMap<Key, Key>;
    fn set_faults(&mut self, plan: FaultPlan);
    fn partition(&mut self, lo: Key, hi: Key);
    fn heal(&mut self);
    /// Runs the engine's invariant auditor
    /// (directory↔slab↔trie↔replication cross-consistency).
    fn audit(&self) -> Vec<Violation>;
}

struct Sync(DlptSystem);
impl Runtime for Sync {
    fn join(&mut self, id: Key) {
        self.0.add_peer_with_id(id, u32::MAX >> 1).unwrap();
    }
    fn insert(&mut self, key: Key) {
        self.0.insert_data(key).unwrap();
    }
    fn remove(&mut self, key: &Key) {
        self.0.remove_data(key).unwrap();
    }
    fn query(&mut self, op: &Op) -> (bool, Vec<Key>) {
        let out = match op {
            Op::Lookup(i) => self.0.lookup(&key(*i)),
            Op::Complete(i) => {
                let k = key(*i);
                self.0.complete(&k.truncated(2.min(k.len())))
            }
            Op::Range(a, b) => {
                let (lo, hi) = ordered(*a, *b);
                self.0.range(&lo, &hi)
            }
            _ => unreachable!(),
        };
        (out.satisfied, out.results)
    }
    fn crash(&mut self, id: &Key) {
        let lost = self.0.crash_peer(id).unwrap();
        assert!(lost.is_empty(), "k=2 + fresh anti-entropy: {lost:?}");
    }
    fn anti_entropy(&mut self) {
        self.0.anti_entropy().unwrap();
    }
    fn peers(&self) -> Vec<Key> {
        self.0.peer_ids()
    }
    fn placements(&self) -> BTreeMap<Key, Key> {
        self.0
            .directory()
            .iter()
            .map(|(l, h)| (l.clone(), h.clone()))
            .collect()
    }
    fn set_faults(&mut self, plan: FaultPlan) {
        self.0.set_fault_plan(plan);
    }
    fn partition(&mut self, lo: Key, hi: Key) {
        self.0.partition(lo, hi);
    }
    fn heal(&mut self) {
        self.0.heal_partition();
    }
    fn audit(&self) -> Vec<Violation> {
        self.0.audit()
    }
}

struct Latency(LatencyNet);
impl Runtime for Latency {
    fn join(&mut self, id: Key) {
        self.0.add_peer(id);
    }
    fn insert(&mut self, key: Key) {
        self.0.insert_data(key);
    }
    fn remove(&mut self, key: &Key) {
        self.0.remove_data(key);
    }
    fn query(&mut self, op: &Op) -> (bool, Vec<Key>) {
        match op {
            Op::Lookup(i) => self.0.lookup(&key(*i)),
            Op::Complete(i) => {
                let k = key(*i);
                self.0.complete(&k.truncated(2.min(k.len())))
            }
            Op::Range(a, b) => {
                let (lo, hi) = ordered(*a, *b);
                self.0.range(&lo, &hi)
            }
            _ => unreachable!(),
        }
    }
    fn crash(&mut self, id: &Key) {
        let lost = self.0.crash_peer(id);
        assert!(lost.is_empty(), "k=2 + fresh anti-entropy: {lost:?}");
    }
    fn anti_entropy(&mut self) {
        self.0.anti_entropy();
    }
    fn peers(&self) -> Vec<Key> {
        self.0.peer_ids()
    }
    fn placements(&self) -> BTreeMap<Key, Key> {
        self.0
            .directory()
            .iter()
            .map(|(l, h)| (l.clone(), h.clone()))
            .collect()
    }
    fn set_faults(&mut self, plan: FaultPlan) {
        self.0.set_fault_plan(plan);
    }
    fn partition(&mut self, lo: Key, hi: Key) {
        self.0.partition(lo, hi);
    }
    fn heal(&mut self) {
        self.0.heal_partition();
    }
    fn audit(&self) -> Vec<Violation> {
        self.0.audit()
    }
}

struct Threaded(ThreadedDlpt);
impl Runtime for Threaded {
    fn join(&mut self, id: Key) {
        self.0.add_peer_with_id(id);
    }
    fn insert(&mut self, key: Key) {
        self.0.insert_data(key);
    }
    fn remove(&mut self, key: &Key) {
        self.0.remove_data(key);
    }
    fn query(&mut self, op: &Op) -> (bool, Vec<Key>) {
        match op {
            Op::Lookup(i) => self.0.lookup(&key(*i)),
            Op::Complete(i) => {
                let k = key(*i);
                self.0.complete(&k.truncated(2.min(k.len())))
            }
            Op::Range(a, b) => {
                let (lo, hi) = ordered(*a, *b);
                self.0.range(&lo, &hi)
            }
            _ => unreachable!(),
        }
    }
    fn crash(&mut self, id: &Key) {
        let lost = self.0.crash_peer(id);
        assert!(lost.is_empty(), "k=2 + fresh anti-entropy: {lost:?}");
    }
    fn anti_entropy(&mut self) {
        self.0.anti_entropy();
    }
    fn peers(&self) -> Vec<Key> {
        self.0.peer_ids()
    }
    fn placements(&self) -> BTreeMap<Key, Key> {
        self.0
            .directory()
            .iter()
            .map(|(l, h)| (l.clone(), h.clone()))
            .collect()
    }
    fn set_faults(&mut self, plan: FaultPlan) {
        self.0.set_fault_plan(plan);
    }
    fn partition(&mut self, lo: Key, hi: Key) {
        self.0.partition(lo, hi);
    }
    fn heal(&mut self) {
        self.0.heal_partition();
    }
    fn audit(&self) -> Vec<Violation> {
        self.0.audit()
    }
}

fn ordered(a: u8, b: u8) -> (Key, Key) {
    let (x, y) = (key(a), key(b));
    if x <= y {
        (x, y)
    } else {
        (y, x)
    }
}

/// Runs the workload, returning every query result plus the final
/// placements. Crashes only fire when replication can absorb them.
fn drive<R: Runtime>(rt: &mut R, ops: &[Op], initial_peers: usize, k: usize) -> Observed {
    for i in 0..initial_peers {
        rt.join(peer_id(i));
    }
    let mut next_peer = initial_peers;
    let mut results = Vec::new();
    for o in ops {
        match o {
            Op::Join => {
                rt.join(peer_id(next_peer));
                next_peer += 1;
            }
            Op::Insert(i) => rt.insert(key(*i)),
            Op::Remove(i) => rt.remove(&key(*i)),
            Op::Lookup(_) | Op::Complete(_) | Op::Range(_, _) => results.push(rt.query(o)),
            Op::Crash(i) => {
                // Only when a follower copy of every hosted node can
                // exist: k = 2 and at least 3 survivors.
                let peers = rt.peers();
                if k < 2 || peers.len() < 4 {
                    continue;
                }
                let victim = peers[*i as usize % peers.len()].clone();
                // Fresh copies in, crash, redundancy restored — the
                // same fail-over path in every runtime.
                rt.anti_entropy();
                rt.crash(&victim);
                rt.anti_entropy();
            }
        }
    }
    Observed {
        placements: rt.placements(),
        results,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline satellite: one workload, three runtimes, identical
    /// placements and result sets — replication and caching included.
    #[test]
    fn three_runtimes_agree_on_placements_and_results(
        ops in proptest::collection::vec(op(), 4..28),
        seed in 0u64..500,
        initial_peers in 3usize..6,
        replicated in any::<bool>(),
        cached in any::<bool>(),
    ) {
        let k = if replicated { 2 } else { 1 };
        let cache = if cached { 32 } else { 0 };

        let mut sync = Sync(
            DlptSystem::builder()
                .seed(seed)
                .peer_id_len(8)
                .replication(k)
                .cache_capacity(cache)
                .build(),
        );
        let a = drive(&mut sync, &ops, initial_peers, k);
        sync.0.check_tree().unwrap();
        let audit = Runtime::audit(&sync);
        prop_assert!(audit.is_empty(), "sync audits clean: {:?}", audit);

        let mut latency = Latency(LatencyNet::new(LatencyModel::Constant(0), seed ^ 0x5eed));
        latency.0.set_replication(k);
        latency.0.set_cache_capacity(cache);
        let b = drive(&mut latency, &ops, initial_peers, k);
        latency.0.check_tree().unwrap();
        let audit = latency.audit();
        prop_assert!(audit.is_empty(), "latency audits clean: {:?}", audit);

        let mut threaded = Threaded(ThreadedDlpt::new(Alphabet::grid(), seed ^ 0x7eed));
        threaded.0.set_replication(k);
        threaded.0.set_cache_capacity(cache);
        let c = drive(&mut threaded, &ops, initial_peers, k);
        let audit = threaded.audit();
        prop_assert!(audit.is_empty(), "threaded audits clean: {:?}", audit);

        prop_assert_eq!(&a.placements, &b.placements, "sync vs latency placements");
        prop_assert_eq!(&a.placements, &c.placements, "sync vs threaded placements");
        prop_assert_eq!(&a.results, &b.results, "sync vs latency results");
        prop_assert_eq!(&a.results, &c.results, "sync vs threaded results");
        threaded.0.shutdown();
    }
}

/// One op translated to the query it contributes to a batch (`None`
/// for mutations).
fn query_of(o: &Op) -> Option<QueryKind> {
    match o {
        Op::Lookup(i) => Some(QueryKind::Exact(key(*i))),
        Op::Complete(i) => {
            let k = key(*i);
            Some(QueryKind::Complete(k.truncated(2.min(k.len()))))
        }
        Op::Range(a, b) => {
            let (lo, hi) = ordered(*a, *b);
            Some(QueryKind::Range(lo, hi))
        }
        _ => None,
    }
}

/// Drives the workload through one `DlptSystem`, batching queries.
/// `workers = None` is the sequential reference (`request` per query at
/// the flush point); `Some(w)` routes each flushed batch through the
/// shared-nothing pump at `w` workers. Flush points — before every
/// mutation, at the mid-workload migration, and at the end — are
/// identical in every arm, and both paths draw entry nodes from the
/// system RNG in query order, so all arms consume the RNG identically.
///
/// The mid-workload churn exercises the ownership-handoff path twice:
/// a node is migrated off its canonical host (an explicit
/// `Directory::handoff`), the next batches run against the handed-off
/// placement, and the node is later handed back so the final audit
/// sees the canonical mapping.
fn drive_batched(
    sys: &mut DlptSystem,
    ops: &[Op],
    initial_peers: usize,
    workers: Option<usize>,
) -> Observed {
    fn flush(
        sys: &mut DlptSystem,
        workers: Option<usize>,
        batch: &mut Vec<QueryKind>,
        results: &mut Vec<(bool, Vec<Key>)>,
    ) {
        if batch.is_empty() {
            return;
        }
        let qs = std::mem::take(batch);
        match workers {
            Some(w) => {
                for o in sys.discover_batch(qs, w).unwrap() {
                    results.push((o.satisfied, o.results));
                }
            }
            None => {
                for q in qs {
                    let o = sys.request(q).unwrap();
                    results.push((o.satisfied, o.results));
                }
            }
        }
    }

    for i in 0..initial_peers {
        sys.add_peer_with_id(peer_id(i), u32::MAX >> 1).unwrap();
    }
    // Seed the tree so batches always have an entry node and the
    // migration below always has a label to move.
    for i in 0..4u8 {
        sys.insert_data(key(i)).unwrap();
    }
    let mut next_peer = initial_peers;
    let mut results = Vec::new();
    let mut batch: Vec<QueryKind> = Vec::new();
    let mut undo_migration: Option<(Key, Key)> = None;
    let mid = ops.len() / 2;
    for (at, o) in ops.iter().enumerate() {
        if at == mid {
            flush(sys, workers, &mut batch, &mut results);
            // Hand a node off its canonical host: deterministic pick
            // of the first placement and the last peer not hosting it.
            let moved = sys
                .directory()
                .iter()
                .map(|(l, h)| (l.clone(), h.clone()))
                .next();
            if let Some((label, home)) = moved {
                if let Some(to) = sys.peer_ids().into_iter().rev().find(|p| *p != home) {
                    sys.migrate_node(&label, &to).unwrap();
                    undo_migration = Some((label, home));
                }
            }
        }
        if let Some(q) = query_of(o) {
            batch.push(q);
            continue;
        }
        flush(sys, workers, &mut batch, &mut results);
        match o {
            Op::Join => {
                sys.add_peer_with_id(peer_id(next_peer), u32::MAX >> 1)
                    .unwrap();
                next_peer += 1;
            }
            Op::Insert(i) => sys.insert_data(key(*i)).unwrap(),
            Op::Remove(i) => sys.remove_data(&key(*i)).unwrap(),
            Op::Crash(i) => {
                let peers = sys.peer_ids();
                if peers.len() < 4 {
                    continue;
                }
                let victim = peers[*i as usize % peers.len()].clone();
                sys.anti_entropy().unwrap();
                let lost = sys.crash_peer(&victim).unwrap();
                assert!(lost.is_empty(), "k=2 + fresh anti-entropy: {lost:?}");
                sys.anti_entropy().unwrap();
            }
            Op::Lookup(_) | Op::Complete(_) | Op::Range(_, _) => unreachable!("queries batch"),
        }
    }
    flush(sys, workers, &mut batch, &mut results);
    // Hand the migrated node back so the final audit sees the
    // canonical mapping (the node may have moved again via crash
    // promotion or been deregistered — both make the undo moot).
    if let Some((label, home)) = undo_migration {
        if sys.directory().iter().any(|(l, _)| *l == label) && sys.peer_ids().contains(&home) {
            sys.migrate_node(&label, &home).unwrap();
        }
    }
    flush(sys, workers, &mut batch, &mut results);
    Observed {
        placements: sys
            .directory()
            .iter()
            .map(|(l, h)| (l.clone(), h.clone()))
            .collect(),
        results,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Shared-nothing pump arm: the same seeded workload — k = 2
    /// crashes, route caches on, a mid-workload `migrate_node`
    /// ownership handoff — driven through the sequential pump and
    /// through `discover_batch` at workers ∈ {1, 2, 8} must agree on
    /// placements and result sets, and every arm must audit clean.
    #[test]
    fn parallel_worker_counts_agree_with_the_sequential_pump(
        ops in proptest::collection::vec(op(), 4..24),
        seed in 0u64..200,
        initial_peers in 4usize..6,
    ) {
        let build = || {
            DlptSystem::builder()
                .seed(seed)
                .peer_id_len(8)
                .replication(2)
                .cache_capacity(32)
                .build()
        };
        let mut reference = build();
        let expect = drive_batched(&mut reference, &ops, initial_peers, None);
        reference.check_tree().unwrap();
        let audit = reference.audit();
        prop_assert!(audit.is_empty(), "sequential audits clean: {:?}", audit);

        for w in [1usize, 2, 8] {
            let mut sys = build();
            let got = drive_batched(&mut sys, &ops, initial_peers, Some(w));
            sys.check_tree().unwrap();
            let audit = sys.audit();
            prop_assert!(audit.is_empty(), "workers={} audits clean: {:?}", w, audit);
            prop_assert_eq!(&expect.placements, &got.placements,
                "workers={} placements", w);
            prop_assert_eq!(&expect.results, &got.results, "workers={} results", w);
        }
    }
}

/// Number of queries in an op sequence — the result count `drive` must
/// produce for the workload to count as fully terminated.
fn query_count(ops: &[Op]) -> usize {
    ops.iter()
        .filter(|o| matches!(o, Op::Lookup(_) | Op::Complete(_) | Op::Range(_, _)))
        .count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The lossy arm: the same workloads under 10% message loss, 5%
    /// duplication and 5% reordering. The fault RNG streams differ per
    /// transport, so the runtimes need not agree on results — the
    /// property is *termination*: every drive returns, every query
    /// resolves (satisfied or explicitly failed, never hung), and the
    /// seeded sync run reproduces itself exactly.
    #[test]
    fn lossy_workloads_terminate_on_all_three_runtimes(
        ops in proptest::collection::vec(op(), 4..28),
        seed in 0u64..500,
        initial_peers in 3usize..6,
    ) {
        let plan = |s: u64| FaultPlan {
            loss_rate: 0.10,
            dup_rate: 0.05,
            reorder_rate: 0.05,
            seed: s,
        };
        let expected = query_count(&ops);

        let run_sync = || {
            let mut sync = Sync(DlptSystem::builder().seed(seed).peer_id_len(8).build());
            sync.set_faults(plan(seed));
            let obs = drive(&mut sync, &ops, initial_peers, 1);
            let stats = sync.0.fault_stats();
            let audit = Runtime::audit(&sync);
            (obs, stats, audit)
        };
        let (a, a_stats, a_audit) = run_sync();
        prop_assert_eq!(a.results.len(), expected, "sync: every query terminates");
        prop_assert!(a_audit.is_empty(), "sync audits clean after quiescence: {:?}", a_audit);
        let (a2, _, _) = run_sync();
        prop_assert_eq!(&a.results, &a2.results, "seeded lossy sync reproduces");
        prop_assert_eq!(&a.placements, &a2.placements);

        let mut latency = Latency(LatencyNet::new(LatencyModel::Constant(0), seed ^ 0x5eed));
        latency.set_faults(plan(seed ^ 0x10));
        let b = drive(&mut latency, &ops, initial_peers, 1);
        prop_assert_eq!(b.results.len(), expected, "latency: every query terminates");
        let b_audit = latency.audit();
        prop_assert!(b_audit.is_empty(), "latency audits clean after quiescence: {:?}", b_audit);

        let mut threaded = Threaded(ThreadedDlpt::new(Alphabet::grid(), seed ^ 0x7eed));
        threaded.set_faults(plan(seed ^ 0x20));
        let c = drive(&mut threaded, &ops, initial_peers, 1);
        prop_assert_eq!(c.results.len(), expected, "threaded: every query terminates");
        let c_audit = threaded.audit();
        prop_assert!(c_audit.is_empty(), "threaded audits clean after quiescence: {:?}", c_audit);

        // Mutations and joins travel the reliable class, so the tree
        // the runtimes build is unaffected by the fault plan.
        prop_assert_eq!(&a.placements, &b.placements, "faults never touch placements");
        prop_assert_eq!(&a.placements, &c.placements, "faults never touch placements");
        let _ = a_stats;
        threaded.0.shutdown();
    }
}

/// The partition scenario as a deterministic equivalence check: sever
/// a key range, observe routed requests resolving (never hanging),
/// heal, and require k = 2 + anti-entropy to converge back to fully
/// correct lookups — including across a post-heal crash.
fn drive_partition_scenario<R: Runtime>(rt: &mut R, name: &str) {
    for i in 0..5 {
        rt.join(peer_id(i));
    }
    for i in 0..KEY_POOL.len() {
        rt.insert(key(i as u8));
    }
    rt.anti_entropy();
    // Sever ["D", "K"): lookups toward that range fail explicitly
    // while the rest of the tree keeps answering.
    rt.partition(Key::from("D"), Key::from("K"));
    let mut severed_failures = 0;
    for i in 0..KEY_POOL.len() {
        let (found, results) = rt.query(&Op::Lookup(i as u8));
        if found {
            assert_eq!(results, vec![key(i as u8)], "{name}: wrong result for {i}");
        } else {
            severed_failures += 1;
        }
    }
    assert!(
        severed_failures > 0,
        "{name}: the partition must fail some lookups"
    );
    rt.heal();
    rt.anti_entropy();
    // A crash after the heal: redundancy must have survived the cut
    // (replication traffic rides the reliable class).
    let victim = rt.peers()[2].clone();
    rt.crash(&victim);
    rt.anti_entropy();
    for i in 0..KEY_POOL.len() {
        let (found, results) = rt.query(&Op::Lookup(i as u8));
        assert!(found, "{name}: key {i} must be found after the heal");
        assert_eq!(results, vec![key(i as u8)], "{name}: wrong result for {i}");
    }
    let audit = rt.audit();
    assert!(
        audit.is_empty(),
        "{name}: engine must audit clean after heal + crash + AE: {audit:?}"
    );
}

#[test]
fn partition_heals_and_k2_ae_converges_on_all_three_runtimes() {
    let mut sync = Sync(
        DlptSystem::builder()
            .seed(11)
            .peer_id_len(8)
            .replication(2)
            .build(),
    );
    drive_partition_scenario(&mut sync, "sync");
    sync.0.check_tree().unwrap();

    let mut latency = Latency(LatencyNet::new(LatencyModel::Constant(0), 12));
    latency.0.set_replication(2);
    drive_partition_scenario(&mut latency, "latency");
    latency.0.check_tree().unwrap();

    let mut threaded = Threaded(ThreadedDlpt::new(Alphabet::grid(), 13));
    threaded.0.set_replication(2);
    drive_partition_scenario(&mut threaded, "threaded");
    threaded.0.shutdown();
}

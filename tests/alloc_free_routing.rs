//! Counting-allocator proof of the zero-allocation routing hot path.
//!
//! The perf-baseline PR's claim is *per routed envelope*: once the
//! system is warm (queue, effect buffers and path vectors at their
//! high-water marks), forwarding a discovery envelope one more logical
//! hop must not allocate. Requests still pay a small constant setup
//! cost (the aggregation entry, the pre-sized path vector, the result
//! set), so the assertion is differential: a deep lookup and a shallow
//! lookup on the same warm system must allocate the *same* number of
//! times — i.e. the marginal cost of every extra hop is zero
//! allocations.
//!
//! Everything runs inside ONE `#[test]` so no concurrent test can
//! pollute the global counter.

use dlpt::core::messages::QueryKind;
use dlpt::core::{Alphabet, DlptSystem, Key};
use dlpt::net::{LatencyModel, LatencyNet};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A growth is a new allocation for the purpose of this proof.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Allocations of one closure run.
fn count<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = allocs();
    let r = f();
    (allocs() - before, r)
}

#[test]
fn routed_envelopes_are_allocation_free_in_steady_state() {
    // ---- Phase 1: small-key clones never touch the allocator. ------
    let key = Key::from("S3L_cholesky_factor"); // longest-family corpus name
    assert!(key.is_inline());
    let (n, clones) = count(|| {
        let mut v = Vec::with_capacity(64);
        for _ in 0..64 {
            v.push(key.clone());
        }
        v
    });
    assert_eq!(
        n, 1,
        "64 inline-key clones must cost exactly the one Vec allocation"
    );
    drop(clones);

    // Spilled keys clone by refcount — also allocation-free.
    let long = Key::from("X".repeat(100).as_str());
    assert!(!long.is_inline());
    let (n, c) = count(|| long.clone());
    assert_eq!(n, 0, "spilled-key clone is a refcount bump");
    drop(c);

    // ---- Phase 2: marginal hop cost on the sync pump is zero. ------
    // Binary paper tree: lookups from random entry nodes traverse
    // 0..=4 logical hops depending on entry/target distance.
    let mut sys = DlptSystem::builder()
        .alphabet(Alphabet::binary())
        .seed(7)
        .peer_id_len(10)
        .bootstrap_peers(4)
        .build();
    for s in ["01", "10101", "10111", "101111"] {
        sys.insert_data(Key::from(s)).unwrap();
    }
    // Both requests enter at the SAME node ("01"), so the only
    // difference between them is how many envelopes get routed:
    // exact("01") resolves in place (0 hops), exact("101111") climbs
    // to ε and descends through 101 and 10111 (4 hops).
    let entry = Key::from("01");
    let shallow = QueryKind::Exact(Key::from("01"));
    let deep = QueryKind::Exact(Key::from("101111"));

    // Warm-up: run both lookups repeatedly so every internal buffer
    // (pump queue, effect scratch, gather maps, result vectors)
    // reaches its high-water mark.
    for _ in 0..32 {
        assert!(sys.request_from(&entry, shallow.clone()).unwrap().satisfied);
        assert!(sys.request_from(&entry, deep.clone()).unwrap().satisfied);
    }

    const ROUNDS: u64 = 64;
    let (shallow_allocs, hops_shallow) = count(|| {
        let mut hops = 0;
        for _ in 0..ROUNDS {
            hops += sys
                .request_from(&entry, shallow.clone())
                .unwrap()
                .logical_hops();
        }
        hops
    });
    let (deep_allocs, hops_deep) = count(|| {
        let mut hops = 0;
        for _ in 0..ROUNDS {
            hops += sys
                .request_from(&entry, deep.clone())
                .unwrap()
                .logical_hops();
        }
        hops
    });
    assert!(
        hops_deep > hops_shallow,
        "workload sanity: the deep key must route farther ({hops_deep} vs {hops_shallow} hops)"
    );
    // The deep run routes 256 extra envelopes (64 rounds x 4 hops); if
    // any per-hop path allocated, the difference would be >= 256. The
    // counter occasionally sees a couple of incidental allocations
    // (BTreeMap node churn in the aggregation maps straddling a
    // measurement boundary), so the assertion tolerates a constant
    // jitter far below one allocation per hop instead of flaking on
    // strict equality.
    const JITTER: u64 = 4;
    assert!(
        deep_allocs.abs_diff(shallow_allocs) <= JITTER,
        "extra routed envelopes must not allocate: {} hops cost {deep_allocs} allocs, \
         {} hops cost {shallow_allocs}",
        hops_deep,
        hops_shallow
    );
    // And the fixed per-request overhead itself stays small.
    assert!(
        shallow_allocs / ROUNDS <= 16,
        "per-request setup regressed: {} allocs/request",
        shallow_allocs / ROUNDS
    );

    // ---- Phase 3: gather responses are allocation-free too. --------
    // Two completion queries with the SAME result count but different
    // subtree shapes: a registered chain (every visited node holds a
    // key) versus a wide subtree whose internal branch nodes are
    // data-less. The wide query routes more hops and collects more
    // gather responses for the same four results — if a gather
    // response (branch envelope + partial report + aggregation step)
    // allocated, the wide run would cost strictly more.
    for s in ["000", "0000", "00000", "000000"] {
        sys.insert_data(Key::from(s)).unwrap();
    }
    for s in ["11000", "11011", "11100", "11111"] {
        sys.insert_data(Key::from(s)).unwrap();
    }
    let chain = QueryKind::Complete(Key::from("000"));
    let wide = QueryKind::Complete(Key::from("11"));
    for _ in 0..32 {
        assert!(sys.request_from(&entry, chain.clone()).unwrap().satisfied);
        assert!(sys.request_from(&entry, wide.clone()).unwrap().satisfied);
    }
    let (chain_allocs, chain_visits) = count(|| {
        let mut visits = 0;
        for _ in 0..ROUNDS {
            let out = sys.request_from(&entry, chain.clone()).unwrap();
            assert!(out.satisfied && out.results.len() == 4);
            visits += out.gather_visits;
        }
        visits
    });
    let (wide_allocs, wide_visits) = count(|| {
        let mut visits = 0;
        for _ in 0..ROUNDS {
            let out = sys.request_from(&entry, wide.clone()).unwrap();
            assert!(out.satisfied && out.results.len() == 4);
            visits += out.gather_visits;
        }
        visits
    });
    assert!(
        wide_visits > chain_visits,
        "workload sanity: the wide subtree must gather across more nodes \
         ({wide_visits} vs {chain_visits} partial reports)"
    );
    assert!(
        wide_allocs.abs_diff(chain_allocs) <= JITTER,
        "extra gather responses must not allocate: {wide_visits} partials cost \
         {wide_allocs} allocs, {chain_visits} partials cost {chain_allocs}"
    );

    // ---- Phase 4: fault-off admission keeps no retry snapshot. -----
    // The LatencyNet retry path re-sends a verbatim clone of the entry
    // envelope; that snapshot is only worth paying for on a faulty
    // transport, so admission defers it behind `fault_recovery`.
    let mut net = LatencyNet::new(LatencyModel::Constant(1), 11);
    for s in ["00000000", "01000000", "10000000", "11000000"] {
        net.add_peer(Key::from(s));
    }
    for s in ["00", "011", "110"] {
        net.insert_data(Key::from(s));
    }
    let entry = Key::from("00");
    let probe = QueryKind::Exact(Key::from("110"));
    // Warm both admission modes so the gather pool, learn map and
    // finished map sit at their high-water marks.
    for armed in [false, true, false] {
        net.set_fault_recovery(armed);
        for _ in 0..8 {
            let (id, _env) = net.begin_request(&entry, probe.clone()).unwrap();
            net.finish_request(id);
        }
    }
    // Behaviour flip: the snapshot exists exactly when recovery is on.
    let (id, _env) = net.begin_request(&entry, probe.clone()).unwrap();
    assert!(
        net.retry_envelope(id).is_none(),
        "fault-off admission must not keep a retry snapshot"
    );
    net.finish_request(id);
    net.set_fault_recovery(true);
    let (id, _env) = net.begin_request(&entry, probe.clone()).unwrap();
    assert!(
        net.retry_envelope(id).is_some(),
        "fault recovery keeps the origin snapshot for retries"
    );
    net.finish_request(id);
    net.set_fault_recovery(false);
    // Allocation budget: a warm fault-off admission pays exactly the
    // entry envelope's pre-sized path buffer — any snapshot (or other
    // per-request bookkeeping) sneaking back in trips this.
    let (off_allocs, _) = count(|| {
        for _ in 0..ROUNDS {
            let (id, env) = net.begin_request(&entry, probe.clone()).unwrap();
            std::hint::black_box(&env);
            net.finish_request(id);
        }
    });
    assert!(
        off_allocs <= ROUNDS + JITTER,
        "fault-off request admission must allocate only the entry envelope: \
         {off_allocs} allocs over {ROUNDS} requests"
    );

    // ---- Phase 5: the NoopTracer deliver path allocates nothing. ---
    // The observability hooks are threaded through `deliver`,
    // `begin_request` and the gather fold; with the default
    // `Tracer::Noop` every emission site must gate *before*
    // constructing an event, and the metrics registry must record into
    // its preallocated histograms — so a warm routed request costs the
    // same allocations it did before the tracer existed. The budget is
    // differential against Phase 2's own warm system: re-running the
    // deep lookup (after asserting the tracer really is off) must stay
    // within the same per-request envelope measured above.
    assert!(!sys.tracing_enabled(), "tracer must default to Noop");
    let deep = QueryKind::Exact(Key::from("101111"));
    let entry = Key::from("01");
    let (noop_allocs, _) = count(|| {
        for _ in 0..ROUNDS {
            assert!(sys.request_from(&entry, deep.clone()).unwrap().satisfied);
        }
    });
    assert!(
        noop_allocs.abs_diff(deep_allocs) <= JITTER,
        "NoopTracer deliver path must not allocate: {noop_allocs} allocs now vs \
         {deep_allocs} in the pre-phase run"
    );

    // Flipping the ring tracer ON allocates only at arming time (the
    // preallocated ring) — the warm emit path itself stays flat too,
    // events being fixed-size writes into that ring.
    sys.set_tracing(4096);
    for _ in 0..8 {
        sys.request_from(&entry, deep.clone()).unwrap();
    }
    let (ring_allocs, _) = count(|| {
        for _ in 0..ROUNDS {
            assert!(sys.request_from(&entry, deep.clone()).unwrap().satisfied);
        }
    });
    assert!(
        ring_allocs.abs_diff(deep_allocs) <= JITTER,
        "warm ring-tracer emission must write into the preallocated ring: \
         {ring_allocs} allocs vs {deep_allocs} untraced"
    );
    let events = sys.take_trace();
    assert!(!events.is_empty(), "ring tracer must have captured events");

    // ---- Phase 6: warm health collection is allocation-free. -------
    // The observatory keeps no engine state: `collect_health` is a
    // pure read into the monitor's own buffers. After one warm
    // collection sizes those buffers (per-peer rows, depth occupancy,
    // scratch vectors), every further snapshot must reuse them — the
    // off-by-default contract's on-side twin.
    use dlpt::core::transport::FaultStats;
    let mut monitor = dlpt::core::HealthMonitor::new();
    let faults = FaultStats::default();
    sys.collect_health(0, &faults, &mut monitor);
    assert!(
        monitor.snap.nodes > 0 && monitor.snap.bytes.total() > 0,
        "warm-up snapshot must observe real state"
    );
    let (snap_allocs, _) = count(|| {
        for unit in 0..ROUNDS {
            sys.collect_health(unit, &faults, &mut monitor);
        }
    });
    assert!(
        snap_allocs <= JITTER,
        "warm collect_health must reuse the monitor's buffers: \
         {snap_allocs} allocs over {ROUNDS} snapshots"
    );
    // And collection leaves the routing hot path untouched: the same
    // warm deep lookup still costs what it did before the observatory
    // ever ran.
    let (post_allocs, _) = count(|| {
        for _ in 0..ROUNDS {
            assert!(sys.request_from(&entry, deep.clone()).unwrap().satisfied);
        }
    });
    assert!(
        post_allocs.abs_diff(ring_allocs) <= JITTER,
        "health collection must not perturb routing: {post_allocs} allocs vs \
         {ring_allocs} before"
    );
}

//! Offline, API-compatible subset of the `crossbeam` crate.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is used by
//! this workspace (the threaded DLPT runtime); it is backed by
//! `std::sync::mpsc`, whose unbounded MPSC semantics match. Swap back
//! to the registry crate by editing `[workspace.dependencies]`.

/// Multi-producer multi-consumer channels (MPSC subset).
pub mod channel {
    use std::sync::mpsc;

    /// Error returned when the receiving side disconnected.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned when all senders disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }
    impl std::error::Error for RecvError {}

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message; errors only when the receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner
                .send(msg)
                .map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; errors when every sender is
        /// gone and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive; `None` when nothing is queued.
        pub fn try_recv(&self) -> Option<T> {
            self.inner.try_recv().ok()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_in_across_threads() {
            let (tx, rx) = unbounded::<u32>();
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let tx = tx.clone();
                    std::thread::spawn(move || tx.send(i).unwrap())
                })
                .collect();
            drop(tx);
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            for h in handles {
                h.join().unwrap();
            }
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        }
    }
}

//! Offline, API-compatible subset of the `rand` crate.
//!
//! The workspace builds without crates.io access, so the `rand`
//! surface it uses — `RngCore`, `Rng::{gen, gen_range, gen_bool}`,
//! `SeedableRng::seed_from_u64`, `rngs::StdRng`, and
//! `seq::SliceRandom::{choose, shuffle}` — is reimplemented here.
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64: deterministic,
//! `Clone`, and statistically solid for simulation workloads. Its
//! stream differs from upstream `rand`'s ChaCha-based `StdRng`, which
//! is fine: nothing in the workspace depends on upstream's exact
//! stream, only on seeded determinism.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Derives a full generator state from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of upstream `rand`).
pub trait StandardSample {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Draws a uniform value below `bound` without modulo bias.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone: the largest multiple of `bound` <= 2^64.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                let span = span.wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
impl_range_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Convenience methods on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard (full-domain) distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from a range.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_range(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        <f64 as StandardSample>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator:
    /// xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let raw = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&raw[..chunk.len()]);
            }
        }
    }
}

/// Sequence helpers (`choose`, `shuffle`).
pub mod seq {
    use super::{uniform_below, RngCore};

    /// Random selection and permutation over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// A uniformly chosen element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// `amount` distinct elements, sampled without replacement
        /// (capped at the slice length).
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, Self::Item>;
    }

    /// Iterator over elements sampled by
    /// [`SliceRandom::choose_multiple`].
    pub struct SliceChooseIter<'a, T> {
        picked: std::vec::IntoIter<&'a T>,
    }

    impl<'a, T> Iterator for SliceChooseIter<'a, T> {
        type Item = &'a T;
        fn next(&mut self) -> Option<&'a T> {
            self.picked.next()
        }
        fn size_hint(&self) -> (usize, Option<usize>) {
            self.picked.size_hint()
        }
    }

    impl<T> ExactSizeIterator for SliceChooseIter<'_, T> {}

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, T> {
            // Partial Fisher–Yates over an index vector.
            let amount = amount.min(self.len());
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = i + uniform_below(rng, (idx.len() - i) as u64) as usize;
                idx.swap(i, j);
            }
            let picked: Vec<&T> = idx[..amount].iter().map(|&i| &self[i]).collect();
            SliceChooseIter {
                picked: picked.into_iter(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(5u32..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(8);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn dyn_rng_works_through_rng_trait() {
        let mut rng = StdRng::seed_from_u64(9);
        let dynr: &mut dyn RngCore = &mut rng;
        let v = dynr.gen_range(0..10usize);
        assert!(v < 10);
        let _: f64 = dynr.gen();
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}

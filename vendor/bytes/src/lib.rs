//! Offline, API-compatible subset of the `bytes` crate.
//!
//! The container this workspace builds in has no crates.io access, so
//! the handful of `bytes` APIs the wire codec uses are reimplemented
//! here over `Vec<u8>`/`Arc<[u8]>`. Only the surface the workspace
//! actually calls is provided; swap back to the registry crate by
//! editing `[workspace.dependencies]`.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer.
///
/// Backed by `Arc<Vec<u8>>` rather than `Arc<[u8]>`: converting a
/// freshly written `Vec` (the `BytesMut::freeze` path every encoded
/// frame takes) is then a pointer move instead of a
/// shrink-reallocation plus a full byte copy into a new `Arc`
/// allocation. Equality and hashing still see only the byte contents.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::new(Vec::new()),
        }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::new(data.to_vec()),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        // Zero-copy: the vector (spare capacity included) is moved
        // behind the refcount as-is.
        Bytes { data: Arc::new(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

/// A growable byte buffer.
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a byte cursor.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// A view of the unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_le_bytes(raw)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Copies `dst.len()` bytes out and consumes them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }
    #[inline]
    fn chunk(&self) -> &[u8] {
        self
    }
    #[inline]
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    // Specializations: a slice cursor reads fixed-width integers by
    // direct split, skipping the generic copy_to_slice detour (and its
    // second bounds assertion).
    #[inline]
    fn get_u8(&mut self) -> u8 {
        let b = self[0];
        *self = &self[1..];
        b
    }
    #[inline]
    fn get_u16_le(&mut self) -> u16 {
        let (head, tail) = self.split_at(2);
        *self = tail;
        u16::from_le_bytes(head.try_into().expect("split_at(2)"))
    }
    #[inline]
    fn get_u32_le(&mut self) -> u32 {
        let (head, tail) = self.split_at(4);
        *self = tail;
        u32::from_le_bytes(head.try_into().expect("split_at(4)"))
    }
    #[inline]
    fn get_u64_le(&mut self) -> u64 {
        let (head, tail) = self.split_at(8);
        *self = tail;
        u64::from_le_bytes(head.try_into().expect("split_at(8)"))
    }
    #[inline]
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }
    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }
    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u16_le(300);
        b.put_u32_le(70_000);
        b.put_u64_le(1 << 40);
        b.put_slice(b"xyz");
        let frozen = b.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u16_le(), 300);
        assert_eq!(cur.get_u32_le(), 70_000);
        assert_eq!(cur.get_u64_le(), 1 << 40);
        let mut rest = [0u8; 3];
        cur.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"xyz");
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn bytes_clone_is_cheap_and_equal() {
        let a = Bytes::copy_from_slice(b"hello");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.to_vec(), b"hello");
    }
}

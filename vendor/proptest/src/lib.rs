//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The workspace builds without crates.io access, so the proptest
//! surface its test suites use is reimplemented here: the `proptest!`
//! macro, `Strategy` with `prop_map`, `Just`, `prop_oneof!`, numeric
//! range strategies, tuple strategies, `collection::{vec, btree_set}`,
//! `any::<T>()`, simple regex string strategies, and the
//! `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the assertion
//!   message and its case index; rerun with the printed seed offset to
//!   reproduce (generation is deterministic per test and case index).
//! * **Deterministic by default.** Case `i` of a test is a pure
//!   function of `(test location, i)`, so CI runs are reproducible.

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Filters generated values, retrying until `f` accepts one.
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                f,
                whence,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + Send + Sync + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// A type-erased, shareable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T> + Send + Sync>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Strategy yielding a fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        f: F,
        whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter exhausted retries: {}", self.whence);
        }
    }

    /// Uniform choice between boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given alternatives (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_numeric_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_numeric_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    /// `&str` regex-subset strategies: `"[A-Z][A-Z0-9_]{0,9}"` is a
    /// `Strategy<Value = String>`. Supported: literals, `.`, classes
    /// `[...]` with ranges, quantifiers `{n}`, `{n,m}`, `?`, `*`, `+`.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            super::string::generate_from_pattern(self, rng)
        }
    }
}

pub mod string {
    //! Generation of strings from a small regex subset.

    use super::test_runner::TestRng;
    use rand::Rng;

    #[derive(Clone)]
    enum Atom {
        Literal(char),
        Any,
        Class(Vec<(char, char)>),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut pieces = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                        + i;
                    let mut ranges = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            ranges.push((chars[j], chars[j + 2]));
                            j += 3;
                        } else {
                            ranges.push((chars[j], chars[j]));
                            j += 1;
                        }
                    }
                    i = close + 1;
                    Atom::Class(ranges)
                }
                '.' => {
                    i += 1;
                    Atom::Any
                }
                '\\' => {
                    i += 1;
                    let c = chars[i];
                    i += 1;
                    Atom::Literal(c)
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            let (min, max) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                            + i;
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        match body.split_once(',') {
                            Some((lo, hi)) => (
                                lo.trim().parse().expect("quantifier lower bound"),
                                hi.trim().parse().expect("quantifier upper bound"),
                            ),
                            None => {
                                let n = body.trim().parse().expect("quantifier count");
                                (n, n)
                            }
                        }
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn draw_atom(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Literal(c) => *c,
            Atom::Any => rng.gen_range(b' '..=b'~') as char,
            Atom::Class(ranges) => {
                let total: u32 = ranges.iter().map(|(a, b)| *b as u32 - *a as u32 + 1).sum();
                let mut pick = rng.gen_range(0..total);
                for (a, b) in ranges {
                    let span = *b as u32 - *a as u32 + 1;
                    if pick < span {
                        return char::from_u32(*a as u32 + pick).expect("class char");
                    }
                    pick -= span;
                }
                unreachable!("pick within total")
            }
        }
    }

    /// Generates one string matching the pattern.
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let n = rng.gen_range(piece.min..=piece.max);
            for _ in 0..n {
                out.push(draw_atom(&piece.atom, rng));
            }
        }
        out
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// A size bound for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn draw(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.min..=self.max_inclusive)
        }
    }

    /// Strategy for `Vec<S::Value>` ([`vec`]).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` ([`btree_set`]).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates sets with exactly a drawn number of distinct elements.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.draw(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < n {
                out.insert(self.element.generate(rng));
                attempts += 1;
                assert!(
                    attempts < 1000 * (n + 1),
                    "btree_set strategy could not reach {n} distinct elements"
                );
            }
            out
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — full-domain strategies per type.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value over the whole domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_standard {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen::<$t>()
                }
            }
        )*};
    }
    impl_arbitrary_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod test_runner {
    //! Deterministic case scheduling for [`crate::proptest!`].

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The RNG handed to strategies.
    pub type TestRng = StdRng;

    /// Runner configuration (`cases` only).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases each test runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// The deterministic RNG for one case of one test.
    pub fn case_rng(file: &str, line: u32, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in file.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        h = (h ^ line as u64).wrapping_mul(0x0000_0100_0000_01B3);
        h = (h ^ case as u64).wrapping_mul(0x0000_0100_0000_01B3);
        StdRng::seed_from_u64(h)
    }
}

/// Everything a proptest-based test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...)` block
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let strategy = ($($strat,)+);
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::case_rng(file!(), line!(), case);
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::generate(&strategy, &mut rng);
                    $body
                }
            }
        )*
    };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Panics (failing the case) when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!("prop_assert failed: {}: {}", stringify!($cond), format!($($fmt)+));
        }
    };
}

/// Panics when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    panic!("prop_assert_eq failed:\n  left: {:?}\n right: {:?}", l, r);
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    panic!(
                        "prop_assert_eq failed: {}\n  left: {:?}\n right: {:?}",
                        format!($($fmt)+), l, r
                    );
                }
            }
        }
    };
}

/// Panics when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    panic!("prop_assert_ne failed: both sides: {:?}", l);
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    panic!(
                        "prop_assert_ne failed: {}: both sides: {:?}",
                        format!($($fmt)+), l
                    );
                }
            }
        }
    };
}

/// Skips the rest of the case when the assumption fails (this subset
/// simply returns from the case body's iteration via a labeled
/// continue is not possible in a macro, so it panics with a marker —
/// unused by the workspace, provided for API parity).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            // Subset behavior: treat a failed assumption as a no-op case.
            continue;
        }
    };
}

pub use strategy::Strategy;

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::case_rng;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = case_rng("x", 1, 0);
        for case in 0..200u32 {
            let mut rng2 = case_rng("x", 2, case);
            let s = crate::strategy::Strategy::generate(&"[A-Z][A-Z0-9_]{0,9}", &mut rng2);
            assert!(!s.is_empty() && s.len() <= 10, "{s:?}");
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_uppercase(), "{s:?}");
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_'),
                "{s:?}"
            );
            let b = crate::strategy::Strategy::generate(&"[01]{1,12}", &mut rng);
            assert!((1..=12).contains(&b.len()) && b.chars().all(|c| c == '0' || c == '1'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_multiple_patterns(x in 0u32..10, (a, b) in (0u8..4, any::<bool>())) {
            prop_assert!(x < 10);
            prop_assert!(a < 4);
            prop_assert_eq!(b, b);
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(0u64..100, 3..6),
            s in crate::collection::btree_set(0u32..1000, 2..5),
        ) {
            prop_assert!((3..6).contains(&v.len()));
            prop_assert!((2..5).contains(&s.len()));
        }

        #[test]
        fn oneof_and_map(digit in prop_oneof![Just(b'0'), Just(b'1')].prop_map(|b| b as char)) {
            prop_assert!(digit == '0' || digit == '1');
        }
    }
}

//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The workspace builds without crates.io access, so the criterion
//! surface its benches use — `Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! `criterion_group!`, `criterion_main!` — is reimplemented as a small
//! wall-clock harness. It measures a fixed number of timed samples per
//! benchmark and prints `name  time: [min mean max]` lines; there is
//! no statistical analysis, HTML report, or baseline comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// An identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `<function_name>/<parameter>`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Uses the parameter alone as the identifier.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Batching hint for [`Bencher::iter_batched`] (ignored by this
/// subset; every sample runs one setup + one routine call).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Runs the closure under measurement.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, one sample per call, `samples` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call outside the measurement.
        std::hint::black_box(routine());
        self.results.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.results.push(start.elapsed());
        }
    }

    /// Times `routine` over fresh inputs built by `setup`; only the
    /// routine is inside the measured window.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        self.results.clear();
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.results.push(start.elapsed());
        }
    }
}

fn report(label: &str, results: &[Duration]) {
    if results.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let min = results.iter().min().expect("non-empty");
    let max = results.iter().max().expect("non-empty");
    let mean = results.iter().sum::<Duration>() / results.len() as u32;
    println!("{label:<40} time: [{min:>10.2?} {mean:>10.2?} {max:>10.2?}]");
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks one routine.
    pub fn bench_function<O, R: FnMut(&mut Bencher) -> O>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: R,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        let mut b = Bencher {
            samples: effective_samples(self.sample_size),
            results: Vec::new(),
        };
        f(&mut b);
        report(&label, &b.results);
        self
    }

    /// Benchmarks one routine against a borrowed input.
    pub fn bench_with_input<I: ?Sized, O, R: FnMut(&mut Bencher, &I) -> O>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: R,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        let mut b = Bencher {
            samples: effective_samples(self.sample_size),
            results: Vec::new(),
        };
        f(&mut b, input);
        report(&label, &b.results);
        self
    }

    /// Ends the group (printing is immediate; kept for API parity).
    pub fn finish(self) {
        let _ = self.criterion;
    }
}

/// Caps sample counts when a quick smoke run is requested via
/// `DLPT_BENCH_FAST=1` (used by CI, where timing fidelity is moot).
fn effective_samples(configured: usize) -> usize {
    match std::env::var("DLPT_BENCH_FAST") {
        Ok(v) if v != "0" => configured.min(2),
        _ => configured,
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 100,
        }
    }

    /// Benchmarks one stand-alone routine.
    pub fn bench_function<O, R: FnMut(&mut Bencher) -> O>(
        &mut self,
        id: &str,
        mut f: R,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: effective_samples(100),
            results: Vec::new(),
        };
        f(&mut b);
        report(id, &b.results);
        self
    }
}

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benchers_run_the_closure() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        {
            let mut g = c.benchmark_group("demo");
            g.sample_size(3);
            g.bench_function("count", |b| b.iter(|| runs += 1));
            g.finish();
        }
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(0.5).to_string(), "0.5");
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}

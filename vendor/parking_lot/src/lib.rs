//! Offline, API-compatible subset of the `parking_lot` crate.
//!
//! Provides `Mutex` and `RwLock` with parking_lot's non-poisoning
//! `lock()`/`read()`/`write()` signatures, backed by `std::sync`.
//! A panic while holding the std lock would poison it; matching
//! parking_lot, the poison is ignored and the data handed out.

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock` never returns an error.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A readers-writer lock whose accessors never return errors.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 800);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}

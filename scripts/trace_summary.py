#!/usr/bin/env python3
"""Summarize (and validate) a JSONL trace emitted by `dlpt-core::obs`.

Usage:
    scripts/trace_summary.py <trace.jsonl> [--validate]

Each line of the input is one fixed-shape event:

    {"req": N, "kind": "hop", "a": .., "b": .., "depth": ..,
     "flags": .., "round": .., "worker": .., "seq": ..}

``kind`` is one of the engine's stable event names (admit, hop,
cache_hit, cache_stale, cache_miss, branch_open, branch_close, retry,
dedup_suppress, drop, satisfy, fail). The summary reports event counts
for *all twelve* kinds (zero-filled — an absent counter and a zero
counter read the same, so downstream diffs are shape-stable),
per-request shape (events, hops, max depth) and the worker spread, so
a trace can be sanity-read without tooling. A line with an unknown
``kind`` always exits non-zero, with or without ``--validate``: such a
line means the trace and this tool disagree about the event
vocabulary, and every count in the summary would be suspect.

``--validate`` additionally enforces the schema — every line must be a
JSON object with exactly the nine keys above, integer-valued except
``kind`` which must be a known name, and ``seq`` must be
non-decreasing within each ``(round, worker)`` group (the engine's
deterministic merge order). Any violation prints the offending line
and exits non-zero; CI diffs two seeded runs on top of this.
"""

import argparse
import json
import sys
from collections import Counter, defaultdict

KINDS = {
    "admit", "hop", "cache_hit", "cache_stale", "cache_miss",
    "branch_open", "branch_close", "retry", "dedup_suppress",
    "drop", "satisfy", "fail",
}
INT_KEYS = ("req", "a", "b", "depth", "flags", "round", "worker", "seq")
ALL_KEYS = set(INT_KEYS) | {"kind"}


def fail(lineno, line, why):
    print(f"trace-summary: line {lineno}: {why}\n  {line.rstrip()}",
          file=sys.stderr)
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="JSONL trace file")
    ap.add_argument("--validate", action="store_true",
                    help="enforce the event schema; exit non-zero on any "
                         "malformed line")
    args = ap.parse_args()

    kinds = Counter()
    per_req = defaultdict(lambda: {"events": 0, "hops": 0, "max_depth": 0})
    workers = set()
    rounds = set()
    last_seq = {}
    n = 0
    with open(args.trace) as f:
        for lineno, line in enumerate(f, 1):
            if not line.strip():
                fail(lineno, line, "blank line")
            try:
                ev = json.loads(line)
            except json.JSONDecodeError as e:
                fail(lineno, line, f"not JSON: {e}")
            if args.validate:
                if not isinstance(ev, dict) or set(ev) != ALL_KEYS:
                    fail(lineno, line, f"keys != {sorted(ALL_KEYS)}")
                for k in INT_KEYS:
                    if not isinstance(ev[k], int) or ev[k] < 0:
                        fail(lineno, line, f"{k!r} must be a non-negative int")
                group = (ev["round"], ev["worker"])
                if last_seq.get(group, -1) > ev["seq"]:
                    fail(lineno, line,
                         f"seq went backwards within (round, worker) {group}")
                last_seq[group] = ev["seq"]
            if ev.get("kind") not in KINDS:
                fail(lineno, line, f"unknown kind {ev.get('kind')!r}")
            n += 1
            kinds[ev["kind"]] += 1
            r = per_req[ev["req"]]
            r["events"] += 1
            if ev["kind"] == "hop":
                r["hops"] += 1
            r["max_depth"] = max(r["max_depth"], ev["depth"])
            workers.add(ev["worker"])
            rounds.add(ev["round"])

    if args.validate and n == 0:
        print("trace-summary: empty trace", file=sys.stderr)
        sys.exit(1)

    print(f"events: {n}  requests: {len(per_req)}  "
          f"workers: {len(workers)}  rounds: {len(rounds)}")
    for kind in sorted(KINDS):
        print(f"  {kind:<15} {kinds[kind]:>8}")
    if per_req:
        hops = sorted(r["hops"] for r in per_req.values())
        depths = sorted(r["max_depth"] for r in per_req.values())
        mid = len(hops) // 2
        print(f"per-request: hops median {hops[mid]}, max {hops[-1]}; "
              f"depth median {depths[mid]}, max {depths[-1]}")
    if args.validate:
        print("trace-summary: valid")


if __name__ == "__main__":
    main()

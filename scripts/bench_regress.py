#!/usr/bin/env python3
"""Bench regression gate: diff a fresh `perf --smoke` run against the
latest committed `BENCH_*.json`.

Usage:
    scripts/bench_regress.py <fresh-smoke.json> [--tolerance 0.25]
                             [--baseline BENCH_x.json]

The committed baseline may be either format the repo has carried:

* a flat snapshot  — ``{"label": ..., "benchmarks": [...]}``
* an a/b report    — ``{"before": {...}, "after": {...}, "speedup": ...}``
  (the ``after`` block is the machine's current truth and is what the
  fresh run is compared against)

For every benchmark name present in both files, the fresh
``ops_per_sec`` must stay within ``tolerance`` (default +/-25%) of the
baseline; a drop beyond the band fails the gate loudly with the full
table. Distribution rows (``*_p50`` / ``*_p99``) are reported but not
gated: percentile tails on a noisy CI box swing far wider than a real
throughput regression. The ``gather_scaling_*`` fan-out sweep is also
reported ungated: its smoke run draws a different (much smaller)
prefix mix than the committed full run, so the rows are trajectory
diagnostics, not comparable throughputs. The ``parallel_pump_w*`` /
``pump_scaling_efficiency`` scaling rows are gated only when both
snapshots record the same ``nproc`` — worker scaling measured on
different core counts is a hardware diff, not a regression. Rows only
one side knows are reported as such — a renamed benchmark silently
dropping out of the gate is itself worth seeing.

Two paired rows are gated *within* the fresh run rather than against
the baseline: when the fresh snapshot carries both ``engine_dispatch``
and ``engine_dispatch_traced`` (identical pre-drawn plan, tracer off
vs. ring tracer on), the traced/untraced ops_per_sec ratio must stay
at or above ``1 - tracer_tolerance`` (default 0.90) — the
observability subsystem's contract that tracing costs at most ~10%.
Likewise ``engine_dispatch_snapshot`` (the same plan with a
`HealthMonitor` snapshot collected at every unit boundary) must stay
at or above ``1 - snapshot_tolerance`` (default 0.95) of
``engine_dispatch`` — per-unit health collection costs at most ~5%.
"""

import argparse
import glob
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
UNGATED_SUFFIXES = ("_p50", "_p99")
UNGATED_PREFIXES = ("gather_scaling_",)
# Worker-scaling rows only compare across runs on the same core count:
# a w8 measurement from an 8-core box against one from a single-core
# container is a hardware diff, not a regression.
SCALING_PREFIXES = ("parallel_pump_w", "pump_scaling_efficiency")


def latest_committed_baseline():
    candidates = sorted(glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json")))
    if not candidates:
        sys.exit("bench-regress: no committed BENCH_*.json baseline found")
    return candidates[-1]


def snapshot_rows(doc, path):
    """Extract ({name: ops_per_sec}, nproc) from either format.
    Snapshots predating the nproc field report nproc as None."""
    if "benchmarks" not in doc and "after" in doc:
        doc = doc["after"]
    if "benchmarks" not in doc:
        sys.exit(f"bench-regress: {path} has neither a 'benchmarks' array "
                 "nor an 'after' snapshot")
    rows = {}
    for b in doc["benchmarks"]:
        rows[b["name"]] = float(b["ops_per_sec"])
    return rows, doc.get("nproc")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("fresh", help="JSON emitted by `perf --smoke --out ...`")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed relative drop in ops_per_sec (default 0.25)")
    ap.add_argument("--baseline", default=None,
                    help="explicit baseline (default: latest BENCH_*.json)")
    ap.add_argument("--tracer-tolerance", type=float, default=0.10,
                    help="allowed relative slowdown of engine_dispatch_traced "
                         "vs engine_dispatch within the fresh run (default 0.10)")
    ap.add_argument("--snapshot-tolerance", type=float, default=0.05,
                    help="allowed relative slowdown of engine_dispatch_snapshot "
                         "vs engine_dispatch within the fresh run (default 0.05)")
    args = ap.parse_args()

    baseline_path = args.baseline or latest_committed_baseline()
    with open(baseline_path) as f:
        base, base_nproc = snapshot_rows(json.load(f), baseline_path)
    with open(args.fresh) as f:
        fresh, fresh_nproc = snapshot_rows(json.load(f), args.fresh)
    same_cores = base_nproc is not None and base_nproc == fresh_nproc

    print(f"bench-regress: fresh {args.fresh} vs baseline "
          f"{os.path.relpath(baseline_path, REPO_ROOT)} "
          f"(tolerance -{args.tolerance:.0%}, "
          f"nproc {base_nproc} -> {fresh_nproc})")
    header = f"{'benchmark':<28} {'baseline op/s':>14} {'fresh op/s':>14} {'ratio':>7}  verdict"
    print(header)
    print("-" * len(header))

    failures = []
    for name in sorted(set(base) | set(fresh)):
        if name not in fresh:
            print(f"{name:<28} {base[name]:>14,.0f} {'-':>14} {'-':>7}  MISSING from fresh run")
            failures.append(name)
            continue
        if name not in base:
            print(f"{name:<28} {'-':>14} {fresh[name]:>14,.0f} {'-':>7}  new (not gated)")
            continue
        ratio = fresh[name] / base[name] if base[name] else float("inf")
        if name.endswith(UNGATED_SUFFIXES):
            verdict = "distribution row (not gated)"
        elif name.startswith(UNGATED_PREFIXES):
            verdict = "fan-out sweep row (not gated)"
        elif name.startswith(SCALING_PREFIXES) and not same_cores:
            verdict = "scaling row (nproc differs — not gated)"
        elif ratio < 1.0 - args.tolerance:
            verdict = "REGRESSION"
            failures.append(name)
        elif ratio > 1.0 + args.tolerance:
            verdict = "ok (faster — consider refreshing the baseline)"
        else:
            verdict = "ok"
        print(f"{name:<28} {base[name]:>14,.0f} {fresh[name]:>14,.0f} {ratio:>6.2f}x  {verdict}")

    # Tracer-overhead pair: gated inside the fresh run (both rows time
    # the identical pre-drawn plan on the same box, so the ratio is
    # immune to the machine-to-machine noise the baseline gate
    # tolerates).
    if "engine_dispatch" in fresh and "engine_dispatch_traced" in fresh:
        off = fresh["engine_dispatch"]
        on = fresh["engine_dispatch_traced"]
        ratio = on / off if off else float("inf")
        floor = 1.0 - args.tracer_tolerance
        verdict = "ok" if ratio >= floor else "TRACER OVERHEAD REGRESSION"
        print(f"\ntracer overhead (fresh run): traced/untraced = {ratio:.2f}x "
              f"(floor {floor:.2f}x)  {verdict}")
        if ratio < floor:
            failures.append("tracer_overhead")

    # Snapshot-overhead pair: same in-run pairing for the health
    # observatory — per-unit `collect_health` against the identical
    # untraced plan.
    if "engine_dispatch" in fresh and "engine_dispatch_snapshot" in fresh:
        off = fresh["engine_dispatch"]
        on = fresh["engine_dispatch_snapshot"]
        ratio = on / off if off else float("inf")
        floor = 1.0 - args.snapshot_tolerance
        verdict = "ok" if ratio >= floor else "SNAPSHOT OVERHEAD REGRESSION"
        print(f"snapshot overhead (fresh run): snapshot/plain = {ratio:.2f}x "
              f"(floor {floor:.2f}x)  {verdict}")
        if ratio < floor:
            failures.append("snapshot_overhead")

    if failures:
        print(f"\nbench-regress: FAILED — {len(failures)} benchmark(s) "
              f"regressed beyond -{args.tolerance:.0%} or went missing: "
              + ", ".join(failures), file=sys.stderr)
        sys.exit(1)
    print("\nbench-regress: ok")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Validate (and summarize) a health-snapshot JSONL series emitted by
`dlpt-core::obs::health` (the `--health` flag of the figure binaries).

Usage:
    scripts/health_report.py <health.jsonl> [--expect-zero-violations]

Each line is one `HealthSnapshot` of one (config, run, unit) cell,
with a fixed key order and fixed float precision so two seeded runs
diff byte-identically. This tool enforces the schema: every line must
be a JSON object with exactly the expected keys, correctly typed;
`depth_occupancy` must be a list of non-negative ints summing to
`nodes`; `peer_load` must be a list of `[peer, nodes, replicas, used,
messages, slice]` rows whose count matches `peers` and whose node
total matches `nodes` (`slice` is the 1-based worker-slice index of
the last parallel batch, 0 when none ran); the byte columns must sum
to `bytes_total`. Any violation prints the offending line and exits
non-zero.

``--expect-zero-violations`` additionally fails if any snapshot
carries a non-zero `violations` counter (the `Engine::audit`
invariant count) — the CI health-smoke contract that a healthy run
audits clean at every unit boundary.
"""

import argparse
import json
import sys
from collections import defaultdict

INT_KEYS = (
    "run", "unit", "peers", "nodes", "max_depth", "under_replicated",
    "cache_hits", "cache_stale", "cache_learned", "lost", "duplicated",
    "reordered", "partition_dropped", "dedup_suppressed", "retries",
    "requests_failed", "violations", "slices", "ring_peak",
    "bytes_total", "bytes_directory", "bytes_slab", "bytes_shards",
    "bytes_caches",
)
FLOAT_KEYS = ("opt_depth", "imbalance", "gini", "bytes_per_node",
              "bytes_per_peer")
LIST_KEYS = ("depth_occupancy", "peer_load")
ALL_KEYS = set(INT_KEYS) | set(FLOAT_KEYS) | set(LIST_KEYS) | {"cfg"}


def fail(lineno, line, why):
    print(f"health-report: line {lineno}: {why}\n  {line.rstrip()}",
          file=sys.stderr)
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("health", help="JSONL health-snapshot file")
    ap.add_argument("--expect-zero-violations", action="store_true",
                    help="fail if any snapshot reports audit violations")
    args = ap.parse_args()

    n = 0
    violations = 0
    configs = defaultdict(int)
    last = None
    with open(args.health) as f:
        for lineno, line in enumerate(f, 1):
            if not line.strip():
                fail(lineno, line, "blank line")
            try:
                snap = json.loads(line)
            except json.JSONDecodeError as e:
                fail(lineno, line, f"not JSON: {e}")
            if not isinstance(snap, dict) or set(snap) != ALL_KEYS:
                missing = sorted(ALL_KEYS - set(snap))
                extra = sorted(set(snap) - ALL_KEYS)
                fail(lineno, line, f"missing keys {missing}, extra {extra}")
            if not isinstance(snap["cfg"], str) or not snap["cfg"]:
                fail(lineno, line, "'cfg' must be a non-empty string")
            for k in INT_KEYS:
                if not isinstance(snap[k], int) or isinstance(snap[k], bool) \
                        or snap[k] < 0:
                    fail(lineno, line, f"{k!r} must be a non-negative int")
            for k in FLOAT_KEYS:
                if not isinstance(snap[k], (int, float)) or snap[k] < 0:
                    fail(lineno, line, f"{k!r} must be a non-negative number")
            occ = snap["depth_occupancy"]
            if not isinstance(occ, list) or \
                    any(not isinstance(c, int) or c < 0 for c in occ):
                fail(lineno, line,
                     "'depth_occupancy' must be a list of non-negative ints")
            if sum(occ) != snap["nodes"]:
                fail(lineno, line,
                     f"depth occupancy sums to {sum(occ)}, "
                     f"nodes is {snap['nodes']}")
            pl = snap["peer_load"]
            if not isinstance(pl, list) or any(
                    not isinstance(row, list) or len(row) != 6 or
                    any(not isinstance(v, int) or v < 0 for v in row)
                    for row in pl):
                fail(lineno, line,
                     "'peer_load' rows must be "
                     "[peer, nodes, replicas, used, messages, slice]")
            if len(pl) != snap["peers"]:
                fail(lineno, line,
                     f"{len(pl)} peer_load rows, peers is {snap['peers']}")
            if sum(row[1] for row in pl) != snap["nodes"]:
                fail(lineno, line, "peer_load node total != nodes")
            parts = (snap["bytes_directory"] + snap["bytes_slab"] +
                     snap["bytes_shards"] + snap["bytes_caches"])
            if parts != snap["bytes_total"]:
                fail(lineno, line,
                     f"byte columns sum to {parts}, "
                     f"bytes_total is {snap['bytes_total']}")
            n += 1
            violations += snap["violations"]
            configs[snap["cfg"]] += 1
            last = snap

    if n == 0:
        print("health-report: empty series", file=sys.stderr)
        sys.exit(1)

    print(f"snapshots: {n}  configs: {len(configs)}  "
          f"audit violations: {violations}")
    for cfg in sorted(configs):
        print(f"  {cfg:<28} {configs[cfg]:>6}")
    print(f"last: {last['peers']} peers, {last['nodes']} nodes, "
          f"depth {last['max_depth']} (opt {last['opt_depth']}), "
          f"gini {last['gini']}, {last['bytes_total']} bytes "
          f"({last['bytes_per_node']}/node, {last['bytes_per_peer']}/peer)")
    if args.expect_zero_violations and violations > 0:
        print(f"health-report: FAILED — {violations} audit violation(s) "
              "in a run expected to audit clean", file=sys.stderr)
        sys.exit(1)
    print("health-report: valid")


if __name__ == "__main__":
    main()

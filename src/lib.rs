//! # dlpt — Tree-structured peer-to-peer service discovery
//!
//! A full reproduction of **Caron, Desprez & Tedeschi, "Efficiency of
//! Tree-Structured Peer-to-Peer Service Discovery Systems"** (INRIA
//! RR-6557, 2008): the DLPT prefix-tree overlay, its self-contained
//! ring mapping, and the MLT / k-choices load-balancing heuristics,
//! together with the Chord, PHT and P-Grid comparators and the
//! discrete-time simulation harness that regenerates every figure and
//! table of the paper's evaluation.
//!
//! This facade crate re-exports the workspace members under stable
//! paths so downstream users can depend on a single crate:
//!
//! ```
//! use dlpt::core::{Key, DlptSystem, SystemConfig};
//!
//! let mut sys = DlptSystem::builder()
//!     .seed(42)
//!     .bootstrap_peers(8)
//!     .build();
//! sys.insert_data(Key::from("DGEMM"));
//! sys.insert_data(Key::from("DTRSM"));
//! let hit = sys.lookup(&Key::from("DGEMM"));
//! assert!(hit.found);
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record.

/// PHT and P-Grid comparators ([`dlpt_baselines`]).
pub use dlpt_baselines as baselines;
/// The paper's primary contribution: PGCP tree, protocol, mapping,
/// load balancing ([`dlpt_core`]).
pub use dlpt_core as core;
/// Chord DHT substrate used by the random-mapping baseline and PHT
/// ([`dlpt_dht`]).
pub use dlpt_dht as dht;
/// Transports: deterministic discrete-event simulation and the threaded
/// live runtime ([`dlpt_net`]).
pub use dlpt_net as net;
/// The Section-4 discrete-time experiment harness ([`dlpt_sim`]).
pub use dlpt_sim as sim;
/// Corpora, popularity models, churn and capacity generators
/// ([`dlpt_workloads`]).
pub use dlpt_workloads as workloads;

//! A grid middleware scenario: the full linear-algebra service corpus
//! (BLAS, LAPACK, ScaLAPACK, S3L — ≈1000 routine names) served by a
//! heterogeneous ring, with the discovery patterns the paper's
//! introduction motivates: exact lookup, library browsing by prefix,
//! and range scans.
//!
//! ```sh
//! cargo run --release --example grid_service_discovery
//! ```

use dlpt::core::{DlptSystem, Key};
use dlpt::workloads::capacity::CapacityModel;
use dlpt::workloads::corpus::Corpus;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let corpus = Corpus::grid();
    println!(
        "grid corpus: {} routine names (BLAS + LAPACK + ScaLAPACK + S3L)",
        corpus.len()
    );

    // 40 peers with the paper's heterogeneity: max/min capacity 4.
    let mut sys = DlptSystem::builder().seed(42).build();
    let capacities = CapacityModel::paper(1_000_000);
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..40 {
        let cap = capacities.draw(&mut rng);
        sys.add_peer(cap).expect("join");
    }

    for key in &corpus.keys {
        sys.insert_data(key.clone()).expect("register");
    }
    println!(
        "{} peers host {} logical nodes ({} registered keys)",
        sys.peer_count(),
        sys.node_count(),
        sys.registered_keys().len()
    );
    sys.check_tree().expect("PGCP invariant");
    sys.check_mapping().expect("mapping invariant");

    // A solver needs a double-precision GEMM right now.
    let out = sys.lookup(&Key::from("DGEMM"));
    println!(
        "\nlookup DGEMM: found={} ({} logical hops, {} physical)",
        out.found,
        out.logical_hops(),
        out.physical_hops()
    );

    // Browse: which S3L FFT routines are deployed?
    let out = sys.complete(&Key::from("S3L_fft"));
    println!("S3L FFT family: {:?}", to_names(&out.results));

    // Which double-precision LAPACK QR routines exist? Prefix "DGEQ".
    let out = sys.complete(&Key::from("DGEQ"));
    println!("DGEQ* routines: {:?}", to_names(&out.results));

    // Range scan across the ScaLAPACK single-precision drivers.
    let out = sys.range(&Key::from("PSGE"), &Key::from("PSGZ"));
    println!(
        "ScaLAPACK PSGE..PSGZ range: {} routines, e.g. {:?}",
        out.results.len(),
        to_names(&out.results[..out.results.len().min(5)])
    );

    // Locality of the mapping: how many peers serve the S3L subtree?
    let s3l_hosts: std::collections::BTreeSet<_> = sys
        .node_labels()
        .into_iter()
        .filter(|l| Key::from("S3L").is_prefix_of(l))
        .filter_map(|l| sys.host_of(&l).cloned())
        .collect();
    println!(
        "\nlexicographic locality: the whole S3L subtree lives on {} peer(s) of {}",
        s3l_hosts.len(),
        sys.peer_count()
    );
}

fn to_names(keys: &[Key]) -> Vec<String> {
    keys.iter().map(|k| k.to_string()).collect()
}

//! Renders the paper's illustrative figures:
//!
//! * Figure 1(a): the PGCP tree of the binary keys 01, 10101, 10111,
//!   101111 (structural nodes in parentheses);
//! * Figure 1(b): a PGCP tree over BLAS routine names;
//! * Figure 2: the ring mapping — which peer runs which node;
//! * Figure 3: one MLT boundary move, before/after.
//!
//! ```sh
//! cargo run --example tree_visualization
//! ```

use dlpt::core::balance::mlt::rebalance_pair;
use dlpt::core::{Alphabet, DlptSystem, Key, PgcpTrie};

fn main() {
    // ----- Figure 1(a) ------------------------------------------------
    let mut t = PgcpTrie::new();
    for k in ["01", "10101", "10111", "101111"] {
        t.insert(Key::from(k));
    }
    println!(
        "Figure 1(a): PGCP tree of binary identifiers\n{}",
        t.render()
    );

    // ----- Figure 1(b) ------------------------------------------------
    let mut t = PgcpTrie::new();
    for k in ["DTRSM", "DTRMM", "DGEMM", "DGEMV", "DGETRF", "DSYSV"] {
        t.insert(Key::from(k));
    }
    println!(
        "Figure 1(b): PGCP tree of BLAS/LAPACK routines\n{}",
        t.render()
    );

    // ----- Figure 2: the self-contained ring mapping --------------------
    let mut sys = DlptSystem::builder()
        .alphabet(Alphabet::binary())
        .seed(7)
        .peer_id_len(6)
        .bootstrap_peers(4)
        .build();
    for k in ["01", "10101", "10111", "101111"] {
        sys.insert_data(Key::from(k)).unwrap();
    }
    println!("Figure 2: node -> peer mapping (lowest peer id >= node id)");
    let peers = sys.peer_ids();
    for p in &peers {
        let shard = sys.shard(p).unwrap();
        let nodes: Vec<String> = shard.nodes.keys().map(|k| k.to_string()).collect();
        println!("  peer {p}  runs {nodes:?}");
    }
    sys.check_mapping().unwrap();

    // ----- Figure 3: one MLT step ---------------------------------------
    let mut sys = DlptSystem::builder().seed(3).peer_id_len(4).build();
    sys.add_peer_with_id(Key::from("M000"), 2).unwrap(); // weak peer
    sys.add_peer_with_id(Key::from("Z000"), 30).unwrap(); // strong peer
    for k in ["A0", "C0", "E0", "G0", "J0"] {
        sys.insert_data(Key::from(k)).unwrap();
    }
    // Load the weak peer's nodes for one time unit.
    for _ in 0..40 {
        sys.lookup(&Key::from("C0"));
    }
    sys.end_time_unit();

    println!("\nFigure 3: MLT boundary move");
    print_distribution("before", &sys);
    let strong = Key::from("Z000");
    let moved = rebalance_pair(&mut sys, &strong);
    print_distribution("after ", &sys);
    println!("  boundary moved: {moved} (the weak peer keeps only what it can serve)");
    sys.check_mapping().unwrap();
}

fn print_distribution(tag: &str, sys: &DlptSystem) {
    for p in sys.peer_ids() {
        let shard = sys.shard(&p).unwrap();
        let nodes: Vec<String> = shard
            .nodes
            .values()
            .map(|n| format!("{}(l={})", n.label, n.prev_load))
            .collect();
        println!(
            "  {tag} peer {p} (capacity {:>2}): {nodes:?}",
            shard.peer.capacity
        );
    }
}

//! Quickstart: build a DLPT overlay, register services, discover them.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dlpt::core::{DlptSystem, Key};

fn main() {
    // A ring of 8 peers with random identifiers. The overlay is
    // self-contained: peers join through the prefix tree itself, no
    // DHT underneath (the paper's first contribution).
    let mut sys = DlptSystem::builder().seed(2008).bootstrap_peers(8).build();
    println!("ring of {} peers", sys.peer_count());

    // Servers declare the services they provide. Keys are plain
    // strings — here, linear-algebra routine names as in the paper.
    for service in [
        "DGEMM",
        "DGEMV",
        "DTRSM",
        "SGEMM",
        "S3L_mat_mult",
        "S3L_fft",
    ] {
        sys.insert_data(service).expect("registration succeeds");
    }
    println!(
        "registered {} services over {} tree nodes",
        sys.registered_keys().len(),
        sys.node_count()
    );

    // Exact discovery: the request enters the tree at a random node,
    // climbs to the region covering the key, and descends to it.
    let out = sys.lookup(&Key::from("DGEMM"));
    println!(
        "lookup DGEMM: satisfied={} in {} logical hops ({} physical)",
        out.satisfied,
        out.logical_hops(),
        out.physical_hops()
    );

    // Automatic completion of a partial search string…
    let out = sys.complete(&Key::from("DGE"));
    let names: Vec<String> = out.results.iter().map(|k| k.to_string()).collect();
    println!("complete 'DGE' -> {names:?}");

    // …and range queries (Section 2: trie overlays make both easy).
    let out = sys.range(&Key::from("DGEMM"), &Key::from("DTRSM"));
    let names: Vec<String> = out.results.iter().map(|k| k.to_string()).collect();
    println!("range [DGEMM, DTRSM] -> {names:?}");

    // Every invariant of the paper holds at all times.
    sys.check_tree().expect("PGCP tree invariant");
    sys.check_mapping().expect("successor mapping invariant");
    sys.check_ring().expect("ring links consistent");
    println!("invariants: tree OK, mapping OK, ring OK");
}

//! The live runtime: every peer is an OS thread, protocol messages
//! travel as length-prefixed binary frames over channels — the same
//! handlers the simulator drives, now under real concurrency.
//!
//! ```sh
//! cargo run --example live_threaded
//! ```

use dlpt::core::{Alphabet, Key, PgcpTrie};
use dlpt::net::ThreadedDlpt;

fn main() {
    let mut net = ThreadedDlpt::new(Alphabet::grid(), 7);
    for _ in 0..6 {
        let id = net.add_peer();
        println!("spawned peer thread {id}");
    }

    let services = [
        "DGEMM",
        "DGEMV",
        "DTRSM",
        "SGEMM",
        "S3L_fft",
        "S3L_sort",
        "S3L_mat_mult",
        "PSGESV",
        "PDGETRF",
        "ZHEEV",
    ];
    for s in services {
        net.insert_data(s);
    }
    println!(
        "\nregistered {} services across {} node(s) on {} peer threads",
        services.len(),
        net.node_labels().len(),
        net.peer_count()
    );

    for probe in ["DGEMM", "S3L_fft", "PSGESV"] {
        let (found, _) = net.lookup(&Key::from(probe));
        println!("lookup {probe}: found={found}");
    }
    let (_, s3l) = net.complete(&Key::from("S3L"));
    println!(
        "complete 'S3L' -> {:?}",
        s3l.iter().map(|k| k.to_string()).collect::<Vec<_>>()
    );

    // Deregistration works live too.
    net.remove_data(&Key::from("S3L_sort"));
    let (found, _) = net.lookup(&Key::from("S3L_sort"));
    println!("after removal, lookup S3L_sort: found={found}");

    // The concurrently-built tree equals the sequential oracle.
    let mut oracle = PgcpTrie::new();
    for s in services {
        if s != "S3L_sort" {
            oracle.insert(Key::from(s));
        }
    }
    assert_eq!(net.node_labels(), oracle.labels());
    println!(
        "\nthread-built tree equals the sequential oracle ({} frames handled, {} bounced)",
        *net.stats.frames_handled.lock(),
        *net.stats.frames_bounced.lock()
    );
    net.shutdown();
    println!("all peer threads joined cleanly");
}

//! Churn resilience: peers join and leave (gracefully and by crash)
//! while the service registry keeps answering.
//!
//! ```sh
//! cargo run --example churn_resilience
//! ```

use dlpt::core::{DlptSystem, Key};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(1234);
    let mut sys = DlptSystem::builder().seed(99).bootstrap_peers(12).build();

    let services: Vec<Key> = (0..80)
        .map(|i| {
            Key::from(format!(
                "SVC_{:02}_{}",
                i % 20,
                ["fft", "gemm", "sort", "lu"][i % 4]
            ))
        })
        .collect();
    for s in &services {
        sys.insert_data(s.clone()).unwrap();
    }
    println!(
        "start: {} peers, {} nodes, {} services",
        sys.peer_count(),
        sys.node_count(),
        services.len()
    );

    // 20 churn rounds: joins and graceful leaves, lookups in between.
    for round in 0..20 {
        if rng.gen_bool(0.5) {
            let id = sys.add_peer(1_000_000).unwrap();
            println!("round {round:>2}: peer {id} joined");
        } else if sys.peer_count() > 3 {
            let ids = sys.peer_ids();
            let victim = ids.choose(&mut rng).unwrap().clone();
            sys.leave_peer(&victim).unwrap();
            println!("round {round:>2}: peer {victim} left gracefully");
        }
        sys.check_ring().expect("ring survives churn");
        sys.check_mapping().expect("mapping survives churn");
        sys.check_tree().expect("tree survives churn");
        let probe = services.choose(&mut rng).unwrap();
        assert!(sys.lookup(probe).satisfied, "{probe} must stay reachable");
    }
    println!(
        "after graceful churn: {} peers, every probe satisfied",
        sys.peer_count()
    );

    // Now a crash: a peer vanishes without handing anything over.
    let loaded = sys
        .peer_ids()
        .into_iter()
        .max_by_key(|p| sys.shard(p).map(|s| s.node_count()).unwrap_or(0))
        .unwrap();
    let lost = sys.crash_peer(&loaded).unwrap();
    println!(
        "\ncrash: peer {loaded} died taking {} nodes with it",
        lost.len()
    );

    // Repair re-attaches orphaned subtrees; lost *data* needs
    // re-registration by its servers (the paper's model).
    let report = sys.repair_tree();
    println!(
        "repair: {} orphans re-attached, {} structural nodes created, {} dangling links pruned",
        report.reattached, report.created_nodes, report.pruned_links
    );
    for s in &services {
        sys.insert_data(s.clone()).unwrap(); // idempotent re-register
    }
    sys.check_tree().expect("tree repaired");
    let mut satisfied = 0;
    for s in &services {
        sys.end_time_unit();
        if sys.lookup(s).satisfied {
            satisfied += 1;
        }
    }
    println!(
        "after repair + re-registration: {satisfied}/{} services discoverable",
        services.len()
    );
    assert_eq!(satisfied, services.len());
}

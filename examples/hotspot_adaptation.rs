//! The Figure 8 scenario, live: a dynamic network absorbs two
//! successive hot spots (a burst on the S3L library, then on
//! ScaLAPACK's "P" routines) and the MLT balancer adapts.
//!
//! ```sh
//! cargo run --release --example hotspot_adaptation
//! ```

use dlpt::sim::config::{ExperimentConfig, LbKind, PopKind};
use dlpt::sim::report::ascii_chart;
use dlpt::sim::runner::run_experiment;
use dlpt::workloads::churn::ChurnModel;

fn main() {
    // A scaled-down Figure 8 so the example finishes in seconds:
    // 30 peers, 160 time units, 8 runs; burst phases at 40 and 80.
    let base = ExperimentConfig {
        name: "hotspot-example".into(),
        peers: 30,
        time_units: 160,
        runs: 8,
        load: 0.16,
        churn: ChurnModel::dynamic(),
        popularity: PopKind::Figure8 { hot_fraction: 0.85 },
        ..ExperimentConfig::default()
    };

    let mut curves = Vec::new();
    for lb in [LbKind::Mlt { fraction: 1.0 }, LbKind::None] {
        let label = lb.label();
        let cfg = ExperimentConfig {
            name: format!("hotspot-{label}"),
            lb,
            ..base.clone()
        };
        eprintln!("running {label}…");
        let series = run_experiment(&cfg);
        curves.push((label, series));
    }

    let cols: Vec<(&str, &[f64])> = curves
        .iter()
        .map(|(l, s)| (*l, s.satisfaction.as_slice()))
        .collect();
    println!(
        "{}",
        ascii_chart(
            "Hot spots: uniform | S3L burst @40 | ScaLAPACK 'P' burst @80 | uniform @120",
            &cols,
            Some(100.0),
            18,
            80
        )
    );

    for (label, s) in &curves {
        let phase = |from: usize, to: usize| -> f64 {
            s.satisfaction[from..to].iter().sum::<f64>() / (to - from) as f64
        };
        println!(
            "{label:>5}: uniform {:.0}% | S3L burst start {:.0}% -> end {:.0}% | P burst start {:.0}% -> end {:.0}%",
            phase(20, 40),
            phase(40, 48),
            phase(72, 80),
            phase(80, 88),
            phase(112, 120),
        );
    }
    println!("\nThe MLT curve recovers within each burst phase (the paper's");
    println!("\"the system stabilizes again\"); the no-LB curve stays down.");
}
